//! The query executor.
//!
//! Runs a bound [`QueryPlan`] under an execution [`Profile`]: scans and
//! hash joins materialize a selection over the join chain, predicates
//! filter it, decimal expressions evaluate through the profile's
//! arithmetic backend (JIT+GPU kernels for UltraPrecise, operator-at-a-
//! time GPU for the RateupDB/HEAVY.AI models, base-10⁴ CPU numeric for
//! the PostgreSQL/H2/CockroachDB models, capped i128 for MonetDB,
//! doubles for the DOUBLE baseline), and aggregation runs per group —
//! through the §III-E2 multi-pass reducer on the UltraPrecise path.
//!
//! Every query returns both the real wall time and a [`ModeledTime`]
//! breakdown (scan, PCIe, compile, kernel, CPU) assembled exactly the way
//! §IV measures each system.

use crate::plan::{BoundOperand, BoundPred, ComboExpr, CpuExpr, HavingPred, OutputKind, QueryPlan, Scalar, WideCol};
use crate::profiles::Profile;
use crate::sql::{AggFunc, BinOp, CmpOp};
use crate::storage::{Catalog, ColumnData, Table, Value};
use std::collections::HashMap;
use std::time::Instant;
use up_baselines::limited::{CapError, LimitedDecimal, LimitedEngine};
use up_baselines::soft_decimal::SoftDecimal;
use up_baselines::AltDecimal;
use up_gpusim::cgbn::Tpi;
use up_gpusim::cost::kernel_time;
use up_gpusim::pipeline::{plan_timeline, run_dag, DagNodeCost, PipelineMode, PipelineReport};
use up_gpusim::{DeviceConfig, GlobalMem};
use up_jit::cache::{CompileHandle, CompileInfo, Compiled, JitEngine};
use up_jit::Expr;
use up_num::{DecimalType, NumError, UpDecimal};

/// Execution failures.
#[derive(Debug)]
pub enum QueryError {
    /// SQL syntax.
    Parse(crate::sql::ParseError),
    /// Name resolution / typing.
    Plan(crate::plan::PlanError),
    /// A capability envelope was exceeded (limited-precision systems).
    Capability(CapError),
    /// Numeric failure (division by zero, overflow).
    Num(NumError),
    /// Simulator fault.
    Sim(String),
    /// Feature outside the engine's subset.
    Unsupported(String),
}

impl core::fmt::Display for QueryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::Plan(e) => write!(f, "{e}"),
            QueryError::Capability(e) => write!(f, "{e}"),
            QueryError::Num(e) => write!(f, "{e}"),
            QueryError::Sim(e) => write!(f, "simulator: {e}"),
            QueryError::Unsupported(e) => write!(f, "unsupported: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<CapError> for QueryError {
    fn from(e: CapError) -> Self {
        QueryError::Capability(e)
    }
}

impl From<NumError> for QueryError {
    fn from(e: NumError) -> Self {
        QueryError::Num(e)
    }
}

/// Prices one aggregate item's reduction over the full selection.
fn price_aggregation(
    ctx: &ExecCtx<'_>,
    f: AggFunc,
    scalar: &Scalar,
    vals: &[Value],
    n: usize,
) -> ModeledTime {
    let mut m = ModeledTime::default();
    if n == 0 || f == AggFunc::Count {
        return m;
    }
    if f == AggFunc::CountDistinct {
        // Sort-based distinct on the device: ~n log n comparator steps.
        let cost = ctx.profile.system_cost();
        m.cpu_s += n as f64 * (n as f64).log2().max(1.0) * 2.0e-9 / cost.parallelism;
        return m;
    }
    let dec_ty = match vals.first() {
        Some(Value::Decimal(d)) => Some(d.dtype()),
        _ => crate::plan::scalar_decimal_type(scalar),
    };
    match (ctx.profile, dec_ty) {
        (Profile::UltraPrecise, Some(ty)) => {
            let out_ty = match f {
                AggFunc::Sum | AggFunc::Avg => ty.sum_result(n as u64),
                _ => ty,
            };
            let (_, _, t) = up_gpusim::reduce::priced(
                n as u64,
                out_ty.lw(),
                Tpi(ctx.agg_tpi),
                ctx.device,
            );
            m.kernel_s += t;
        }
        (p, Some(ty)) if p.is_gpu() => {
            // Operator-at-a-time device reduction: one pass over the data.
            let bytes = n as u64 * baseline_value_bytes(p, ty);
            m.kernel_s += bytes as f64 / (ctx.device.mem_bandwidth_gbps * 1e9)
                + ctx.device.launch_overhead_us * 1e-6;
        }
        (p, Some(ty)) => {
            let cost = p.system_cost();
            m.cpu_s += n as f64 * cost.per_op_ns * width_factor(ty.precision) * 1e-9
                / cost.parallelism;
        }
        (p, None) => {
            let cost = p.system_cost();
            m.cpu_s += n as f64 * 4.0e-9 / cost.parallelism;
        }
    }
    m
}

/// Modeled end-to-end time, assembled per §IV's methodology.
#[derive(Clone, Copy, Debug, Default)]
pub struct ModeledTime {
    /// Disk scan of the inputs (0 for in-memory systems like MonetDB).
    pub scan_s: f64,
    /// Host↔device transfers (GPU systems only).
    pub pcie_s: f64,
    /// JIT/NVCC compilation.
    pub compile_s: f64,
    /// GPU kernel execution.
    pub kernel_s: f64,
    /// CPU executor + arithmetic.
    pub cpu_s: f64,
    /// Queueing delay waiting for a free GPU stream (0 for standalone
    /// execution; the concurrent service's stream scheduler fills it in
    /// so contended throughput numbers are priced, not just functional).
    pub queue_s: f64,
}

impl ModeledTime {
    /// Total modeled execution time.
    pub fn total(&self) -> f64 {
        self.scan_s + self.pcie_s + self.compile_s + self.kernel_s + self.cpu_s + self.queue_s
    }

    fn add(&mut self, o: &ModeledTime) {
        self.scan_s += o.scan_s;
        self.pcie_s += o.pcie_s;
        self.compile_s += o.compile_s;
        self.kernel_s += o.kernel_s;
        self.cpu_s += o.cpu_s;
        self.queue_s += o.queue_s;
    }
}

/// A query's output.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// Real wall time of this process.
    pub wall_s: f64,
    /// Modeled time breakdown.
    pub modeled: ModeledTime,
    /// GPU kernels launched.
    pub kernels: usize,
    /// Which simulator tier each launch executed on (tree / decoded /
    /// closure-compiled), plus decoded→compiled promotion events and,
    /// for compiled launches, the lowered/fallback superblock and
    /// mem-thunk shape of the programs that ran. Purely observational:
    /// rows, `modeled`, and stats are bit-identical across tiers, so
    /// this never feeds back into results.
    pub tiers: up_gpusim::TierCounters,
    /// The modeled pipeline timeline, when the plan ran through the
    /// launch DAG (`None` under [`PipelineMode::Off`] or when the plan
    /// had fewer than two independent slots). Kept separate from
    /// `modeled`, whose breakdown stays bit-identical across modes.
    pub pipeline: Option<PipelineReport>,
    /// The modeled multi-device sharding report, when a fleet was
    /// installed (`None` for classic single-device execution). Like
    /// `pipeline`, a side-band model: `modeled` and rows never depend
    /// on it.
    pub fleet: Option<FleetReport>,
}

/// Side-band report of data-parallel execution over a simulated device
/// fleet: scatter (range-sharded scan + transfer) → local exec →
/// exchange (partial results staged over PCIe to the root device) →
/// merge. Row-proportional legs (`scan_s`, `pcie_s`, `kernel_s`,
/// `cpu_s`) shard at throughput-weighted bounds; host-global legs
/// (`compile_s`, `queue_s`) do not. `speedup` is
/// `single_device_s / makespan_s` — the headline scaling number.
#[derive(Clone, Debug, Default)]
pub struct FleetReport {
    /// Devices in the fleet.
    pub devices: usize,
    /// Base-table rows assigned to each device (range shards at the
    /// fleet's throughput-weighted bounds).
    pub partition_rows: Vec<u64>,
    /// Modeled busy seconds per device: its shard of the
    /// row-proportional legs at its own throughput.
    pub device_busy_s: Vec<f64>,
    /// Bytes exchanged from non-root devices to the root for the merge.
    pub exchange_bytes: u64,
    /// Modeled exchange time (staged D2H + H2D legs per sender,
    /// serialized on the root's copy engine).
    pub exchange_s: f64,
    /// The query's full modeled time on one device (= `modeled.total()`).
    pub single_device_s: f64,
    /// Modeled fleet completion: unsharded legs + slowest device shard +
    /// exchange.
    pub makespan_s: f64,
    /// `single_device_s / makespan_s` (1.0 when they tie or both are 0).
    pub speedup: f64,
}

/// Execution context.
pub struct ExecCtx<'a> {
    /// Table catalog.
    pub catalog: &'a Catalog,
    /// System under test.
    pub profile: Profile,
    /// Simulated device.
    pub device: &'a DeviceConfig,
    /// JIT engine (kernel cache persists across queries and may be shared
    /// with other engines; all compilation goes through `&self`).
    pub jit: &'a JitEngine,
    /// TPI for multi-threaded aggregation (paper uses 8 in §IV-C2).
    pub agg_tpi: u32,
    /// TPI for multi-threaded *expression* evaluation (§III-E1); 1 =
    /// the single-thread-per-tuple kernels of Listing 1.
    pub expr_tpi: u32,
    /// Host-side simulator parallelism (blocks across host cores).
    /// Bit-identical results and stats regardless of setting.
    pub sim_par: up_gpusim::SimParallelism,
    /// Plan-level launch pipelining (DAG-parallel expression slots).
    /// Bit-identical results and modeled times regardless of setting;
    /// only host wall-clock and the side-band [`PipelineReport`] change.
    pub pipeline: PipelineMode,
    /// Functional-interpreter backend (tree walker, decoded flat
    /// programs, closure-compiled superblocks, or `Auto` count-based
    /// tier promotion). Bit-identical results, stats, and modeled times;
    /// only host wall-clock and the observational [`QueryResult::tiers`]
    /// change.
    pub exec_backend: up_gpusim::ExecBackend,
    /// Server-wide pipeline-arena binding, when this query runs under
    /// `up-server` with the arena on: compiles rendezvous with the
    /// admission-time prefetch instead of compiling inline, and the
    /// side-band timeline places nodes on the *shared* engine pools.
    /// `None` for standalone queries. Results, `ModeledTime`, and cache
    /// stats are bit-identical either way.
    pub arena: Option<ArenaCtx<'a>>,
    /// Simulated device fleet for data-parallel scans. `None` = classic
    /// single-device execution. With a fleet, the scan/aggregate work is
    /// sharded across devices at throughput-weighted range bounds and
    /// partial accumulators merge in fixed device order — exact decimal
    /// arithmetic keeps rows, `ModeledTime`, kernel counts, and cache
    /// stats bit-identical to single-device; the speedup lives in the
    /// side-band [`FleetReport`].
    pub fleet: Option<&'a up_gpusim::Fleet>,
}

/// One query's binding to the server-wide pipeline arena (see
/// [`up_jit::arena::CompileArena`] and
/// [`up_gpusim::pipeline::SharedTimeline`]).
#[derive(Clone, Copy)]
pub struct ArenaCtx<'a> {
    /// The shared compile arena: admission-time prefetched compiles the
    /// executor rendezvouses with at eval time.
    pub compile: &'a up_jit::arena::CompileArena,
    /// The shared modeled timeline this query's DAG nodes are placed on.
    pub timeline: &'a up_gpusim::pipeline::SharedTimeline,
    /// Arena-assigned query sequence number (admission order — the
    /// serial replay order the bit-exactness argument relies on).
    pub seq: u64,
    /// Modeled arrival second of this query on the server timeline.
    pub arrival_s: f64,
    /// Home device of this query on the shared timeline (0 for a
    /// single-device arena; the server's round-robin router assigns it
    /// in fleet mode).
    pub device: usize,
}

/// Runs a plan.
pub fn execute(plan: &QueryPlan, ctx: &ExecCtx<'_>) -> Result<QueryResult, QueryError> {
    let t0 = Instant::now();
    // The catalog is lock-striped per table: read-lock every scanned
    // table in sorted lowercase-name order (the global lock order shared
    // with `plan::plan`), then reference the guards in plan order.
    let mut lock_names: Vec<String> =
        plan.tables.iter().map(|n| n.to_lowercase()).collect();
    lock_names.sort();
    lock_names.dedup();
    let guards: Vec<_> = lock_names
        .iter()
        .map(|n| {
            ctx.catalog
                .read(n)
                .ok_or_else(|| QueryError::Plan(crate::plan::PlanError(format!("missing table {n}"))))
        })
        .collect::<Result<_, _>>()?;
    let tables: Vec<&Table> = plan
        .tables
        .iter()
        .map(|n| {
            let i = lock_names
                .binary_search(&n.to_lowercase())
                .expect("locked above");
            &*guards[i]
        })
        .collect();

    let mut modeled = ModeledTime::default();
    let cost = ctx.profile.system_cost();

    // Scan model: referenced bytes from disk, when the system includes it.
    if cost.includes_disk_scan {
        let bytes: u64 = tables.iter().map(|t| t.byte_size()).sum();
        modeled.scan_s = bytes as f64 / (cost.scan_gbps * 1e9);
    }

    // GPU systems pay their host-side per-tuple cost once per query
    // (result handling, launch orchestration); CPU row engines pay it in
    // every operator below.
    let tuple_ns = if ctx.profile.is_gpu() {
        modeled.cpu_s +=
            tables[0].rows as f64 * cost.per_tuple_ns * 1e-9 / cost.parallelism;
        0.0
    } else {
        cost.per_tuple_ns
    };

    // 1. Join chain → a selection vector per table.
    let mut sel: Vec<Vec<u32>> = vec![(0..tables[0].rows as u32).collect()];
    for (k, edges) in plan.joins.iter().enumerate() {
        let build_t = k + 1;
        let build = tables[build_t];
        // Build side: key → rows.
        let mut index: HashMap<Vec<String>, Vec<u32>> = HashMap::new();
        for row in 0..build.rows as u32 {
            let key: Vec<String> = edges
                .iter()
                .map(|e| column_value(build, e.right_column, row).render())
                .collect();
            index.entry(key).or_default().push(row);
        }
        // Probe side: every current tuple.
        let n = sel[0].len();
        let mut new_sel: Vec<Vec<u32>> = vec![Vec::new(); sel.len() + 1];
        for i in 0..n {
            let key: Vec<String> = edges
                .iter()
                .map(|e| tuple_value(&tables, &sel, i, e.left).render())
                .collect();
            if let Some(matches) = index.get(&key) {
                for &m in matches {
                    for (t, s) in sel.iter().enumerate() {
                        new_sel[t].push(s[i]);
                    }
                    new_sel[sel.len()].push(m);
                }
            }
        }
        modeled.cpu_s +=
            (n as u64 + build.rows as u64) as f64 * tuple_ns * 1e-9 / cost.parallelism;
        sel = new_sel;
    }

    // 2. Filter.
    if let Some(pred) = &plan.filter {
        let n = sel[0].len();
        let mut keep = Vec::with_capacity(n);
        for i in 0..n {
            if eval_pred(pred, &tables, &sel, i)? {
                keep.push(i);
            }
        }
        modeled.cpu_s += n as f64 * tuple_ns * 1e-9 / cost.parallelism;
        sel = sel
            .iter()
            .map(|s| keep.iter().map(|&i| s[i]).collect())
            .collect();
    }
    let n = sel[0].len();

    let mut kernels = 0usize;
    let mut tiers = up_gpusim::TierCounters::default();
    // All of a query's kernels compile in one translation unit (the
    // paper's Q1 reports one 320–423 ms compile covering every kernel),
    // so compile time is the front-end cost once plus the marginal
    // back-end cost of the additional kernels.
    let mut compile_parts: Vec<f64> = Vec::new();

    // Plan-level launch pipelining: with two or more independent scalar
    // slots, evaluate them through the launch DAG up front, then replay
    // the serial plan-order merge over the per-slot outputs below so
    // rows and the modeled breakdown stay bit-identical to Off.
    let slots = plan.eval_slots();
    let mut pipeline_report: Option<PipelineReport> = None;
    let mut pipelined: Option<std::vec::IntoIter<SlotNodeOut>> =
        if ctx.pipeline.enabled() && slots.len() >= 2 {
            let (outs, report) = eval_slots_pipelined(ctx, &slots, &tables, &sel, n)?;
            pipeline_report = Some(report);
            Some(outs.into_iter())
        } else {
            None
        };
    let mut out_rows: Vec<Vec<Value>>;
    let mut columns: Vec<String> = plan.items.iter().map(|i| i.name.clone()).collect();
    let _ = &mut columns;

    if plan.has_aggregates {
        // 3a. Group.
        let mut groups: Vec<(Vec<String>, Vec<usize>)> = Vec::new();
        if plan.group_by.is_empty() {
            groups.push((Vec::new(), (0..n).collect()));
        } else {
            let mut map: HashMap<Vec<String>, usize> = HashMap::new();
            for i in 0..n {
                let key: Vec<String> = plan
                    .group_by
                    .iter()
                    .map(|w| tuple_value(&tables, &sel, i, *w).render())
                    .collect();
                let gid = *map.entry(key.clone()).or_insert_with(|| {
                    groups.push((key, Vec::new()));
                    groups.len() - 1
                });
                groups[gid].1.push(i);
            }
            groups.sort_by(|a, b| a.0.cmp(&b.0));
            modeled.cpu_s += n as f64 * tuple_ns * 1e-9 / cost.parallelism;
        }

        // 3b. Evaluate aggregate inputs once over all tuples, and price
        // each item's reduction ONCE over the whole selection — the
        // device reduces every group in the same multi-pass launch
        // (§III-E2); only the functional fold below is per group.
        // One entry per item; per aggregate slot: the evaluated input
        // column (None = COUNT(*), needs no input).
        let mut agg_inputs: Vec<Vec<Option<Vec<Value>>>> = Vec::new();
        for item in &plan.items {
            match &item.kind {
                OutputKind::Agg(f, scalar) => {
                    let vals = match pipelined.as_mut() {
                        Some(it) => merge_slot_out(
                            it.next().expect("one DAG node per aggregate input"),
                            &mut modeled,
                            &mut kernels,
                            &mut tiers,
                            &mut compile_parts,
                        ),
                        None => {
                            let (vals, mut m, k, t) =
                                eval_scalar_column(ctx, scalar, &tables, &sel, n)?;
                            if m.compile_s > 0.0 {
                                compile_parts.push(m.compile_s);
                                m.compile_s = 0.0;
                            }
                            modeled.add(&m);
                            kernels += k;
                            tiers += t;
                            modeled.add(&price_aggregation(ctx, *f, scalar, &vals, n));
                            vals
                        }
                    };
                    agg_inputs.push(vec![Some(vals)]);
                }
                OutputKind::AggCombo { aggs, .. } => {
                    let mut agg_slots = Vec::with_capacity(aggs.len());
                    for (f, scalar) in aggs {
                        match scalar {
                            Some(sc) => {
                                let vals = match pipelined.as_mut() {
                                    Some(it) => merge_slot_out(
                                        it.next().expect("one DAG node per aggregate input"),
                                        &mut modeled,
                                        &mut kernels,
                                        &mut tiers,
                                        &mut compile_parts,
                                    ),
                                    None => {
                                        let (vals, mut m, k, t) =
                                            eval_scalar_column(ctx, sc, &tables, &sel, n)?;
                                        if m.compile_s > 0.0 {
                                            compile_parts.push(m.compile_s);
                                            m.compile_s = 0.0;
                                        }
                                        modeled.add(&m);
                                        kernels += k;
                                        tiers += t;
                                        modeled.add(&price_aggregation(ctx, *f, sc, &vals, n));
                                        vals
                                    }
                                };
                                agg_slots.push(Some(vals));
                            }
                            None => agg_slots.push(None),
                        }
                    }
                    agg_inputs.push(agg_slots);
                }
                _ => agg_inputs.push(Vec::new()),
            }
        }

        // 3c. Reduce per group.
        out_rows = Vec::with_capacity(groups.len());
        for (_, members) in &groups {
            let mut row = Vec::with_capacity(plan.items.len());
            for (idx, item) in plan.items.iter().enumerate() {
                let v = match &item.kind {
                    OutputKind::Key(w) => {
                        tuple_value(&tables, &sel, members[0], *w)
                    }
                    OutputKind::CountStar => Value::Int64(members.len() as i64),
                    OutputKind::Agg(f, _) => {
                        let vals = agg_inputs[idx][0].as_ref().expect("inputs computed");
                        aggregate_group_fleet(ctx, *f, vals, members)?
                    }
                    OutputKind::AggCombo { aggs, combo } => {
                        let mut agg_vals = Vec::with_capacity(aggs.len());
                        for (slot, (f, _)) in aggs.iter().enumerate() {
                            let v = match &agg_inputs[idx][slot] {
                                Some(vals) => aggregate_group_fleet(ctx, *f, vals, members)?,
                                None => Value::Int64(members.len() as i64),
                            };
                            agg_vals.push(v);
                        }
                        eval_combo(combo, &agg_vals)?
                    }
                    OutputKind::Scalar(_) => unreachable!("validated at plan time"),
                };
                row.push(v);
            }
            out_rows.push(row);
        }
    } else {
        // 3. Plain projection.
        let mut cols: Vec<Vec<Value>> = Vec::with_capacity(plan.items.len());
        for item in &plan.items {
            match &item.kind {
                OutputKind::Scalar(s) => {
                    let vals = match pipelined.as_mut() {
                        Some(it) => merge_slot_out(
                            it.next().expect("one DAG node per projection"),
                            &mut modeled,
                            &mut kernels,
                            &mut tiers,
                            &mut compile_parts,
                        ),
                        None => {
                            let (vals, mut m, k, t) = eval_scalar_column(ctx, s, &tables, &sel, n)?;
                            if m.compile_s > 0.0 {
                                compile_parts.push(m.compile_s);
                                m.compile_s = 0.0;
                            }
                            modeled.add(&m);
                            kernels += k;
                            tiers += t;
                            vals
                        }
                    };
                    cols.push(vals);
                }
                OutputKind::Key(w) => {
                    cols.push((0..n).map(|i| tuple_value(&tables, &sel, i, *w)).collect());
                }
                _ => unreachable!("aggregates handled above"),
            }
        }
        out_rows = (0..n)
            .map(|i| cols.iter().map(|c| c[i].clone()).collect())
            .collect();
    }

    // HAVING: filter the (grouped) output rows.
    if let Some(h) = &plan.having {
        let mut kept = Vec::with_capacity(out_rows.len());
        for row in out_rows {
            if eval_having(h, &row)? {
                kept.push(row);
            }
        }
        out_rows = kept;
    }

    // Fold the per-kernel compile estimates into one NVCC invocation:
    // the fixed front end is paid once, the back ends add up.
    if !compile_parts.is_empty() {
        let front = 0.300f64;
        let max = compile_parts.iter().cloned().fold(0.0, f64::max);
        let back_sum: f64 = compile_parts.iter().map(|c| (c - front).max(0.0)).sum();
        modeled.compile_s += (front + back_sum).max(max);
    }

    // 4. ORDER BY + LIMIT.
    if !plan.order_by.is_empty() {
        out_rows.sort_by(|a, b| {
            for &(idx, desc) in &plan.order_by {
                let o = cmp_values(&a[idx], &b[idx]);
                let o = if desc { o.reverse() } else { o };
                if o != core::cmp::Ordering::Equal {
                    return o;
                }
            }
            core::cmp::Ordering::Equal
        });
    }
    if let Some(l) = plan.limit {
        out_rows.truncate(l as usize);
    }

    // Side-band fleet model: shard the row-proportional legs across the
    // devices and price the partial-result exchange. Computed *from*
    // `modeled` after the fact, so the canonical breakdown above stays
    // bit-identical to single-device execution by construction.
    let fleet_rep = ctx.fleet.map(|fleet| {
        fleet_report(fleet, &modeled, tables[0].rows, &out_rows, plan.has_aggregates)
    });

    Ok(QueryResult {
        columns,
        rows: out_rows,
        wall_s: t0.elapsed().as_secs_f64(),
        modeled,
        kernels,
        tiers,
        pipeline: pipeline_report,
        fleet: fleet_rep,
    })
}

/// Approximate wire size of a result-row set — what a device ships to
/// the root during the exchange.
fn rows_byte_estimate(rows: &[Vec<Value>]) -> u64 {
    rows.iter()
        .flat_map(|r| r.iter())
        .map(|v| match v {
            Value::Decimal(d) => d.dtype().lb() as u64,
            Value::Int64(_) | Value::Float64(_) => 8,
            Value::Str(s) => s.len() as u64 + 4,
            Value::Null => 1,
        })
        .sum()
}

/// Builds the [`FleetReport`] for one executed query. Row-proportional
/// legs (scan, PCIe, kernel, host per-tuple work) shard at the fleet's
/// throughput-weighted range bounds — each device processes its rows at
/// its own rate, so weighted shards finish together. Compile and queue
/// time stay host-global. The exchange stages every non-root device's
/// partial result to the root (aggregates ship one partial row set
/// each; projections ship their shard of the output).
fn fleet_report(
    fleet: &up_gpusim::Fleet,
    modeled: &ModeledTime,
    base_rows: usize,
    out_rows: &[Vec<Value>],
    aggregated: bool,
) -> FleetReport {
    let devices = fleet.len();
    let bounds = fleet.shard_bounds(base_rows);
    let partition_rows: Vec<u64> =
        bounds.windows(2).map(|w| (w[1] - w[0]) as u64).collect();
    let sharded = modeled.scan_s + modeled.pcie_s + modeled.kernel_s + modeled.cpu_s;
    let unsharded = modeled.compile_s + modeled.queue_s;
    let w0 = fleet.device(0).throughput_weight();
    let per_row_root = if base_rows > 0 { sharded / base_rows as f64 } else { 0.0 };
    let device_busy_s: Vec<f64> = partition_rows
        .iter()
        .enumerate()
        .map(|(d, &rows)| {
            // Device d runs at `weight_d / weight_0` times the root's
            // throughput on these memory-bound scan shapes.
            rows as f64 * per_row_root * (w0 / fleet.device(d).throughput_weight())
        })
        .collect();
    let result_bytes = rows_byte_estimate(out_rows);
    let mut exchange_bytes = 0u64;
    let mut exchange_s = 0.0;
    for (d, &shard_rows) in partition_rows.iter().enumerate().skip(1) {
        let bytes = if aggregated {
            // One partial accumulator row set per device.
            result_bytes
        } else {
            // This device's shard of the gathered projection.
            if base_rows > 0 {
                result_bytes * shard_rows / base_rows as u64
            } else {
                0
            }
        };
        exchange_bytes += bytes;
        exchange_s += fleet.exchange_time(bytes, d, 0);
    }
    let slowest = device_busy_s.iter().cloned().fold(0.0, f64::max);
    let single_device_s = modeled.total();
    let makespan_s = unsharded + slowest + exchange_s;
    let speedup = if makespan_s > 0.0 && single_device_s > 0.0 {
        single_device_s / makespan_s
    } else {
        1.0
    };
    FleetReport {
        devices,
        partition_rows,
        device_busy_s,
        exchange_bytes,
        exchange_s,
        single_device_s,
        makespan_s,
        speedup,
    }
}

/// Reads a table cell.
fn column_value(table: &Table, col: usize, row: u32) -> Value {
    match &table.columns[col] {
        c @ ColumnData::Decimal { .. } => Value::Decimal(c.get_decimal(row as usize)),
        ColumnData::Int64(v) => Value::Int64(v[row as usize]),
        ColumnData::Float64(v) => Value::Float64(v[row as usize]),
        ColumnData::Str(v) => Value::Str(v[row as usize].clone()),
    }
}

/// Reads a wide-row cell for tuple `i`.
fn tuple_value(tables: &[&Table], sel: &[Vec<u32>], i: usize, w: WideCol) -> Value {
    column_value(tables[w.table], w.column, sel[w.table][i])
}

fn operand_value(
    op: &BoundOperand,
    tables: &[&Table],
    sel: &[Vec<u32>],
    i: usize,
) -> Value {
    match op {
        BoundOperand::Col(w) => tuple_value(tables, sel, i, *w),
        BoundOperand::Dec(d) => Value::Decimal(d.clone()),
        BoundOperand::I64(v) => Value::Int64(*v),
        BoundOperand::F64(v) => Value::Float64(*v),
        BoundOperand::Str(s) => Value::Str(s.clone()),
    }
}

/// Total order across comparable values (coercing numerics).
fn cmp_values(a: &Value, b: &Value) -> core::cmp::Ordering {
    use core::cmp::Ordering;
    match (a, b) {
        (Value::Decimal(x), Value::Decimal(y)) => x.cmp_value(y),
        (Value::Decimal(x), Value::Int64(y)) => x.cmp_value(&UpDecimal::from_i64(*y)),
        (Value::Int64(x), Value::Decimal(y)) => UpDecimal::from_i64(*x).cmp_value(y),
        (Value::Int64(x), Value::Int64(y)) => x.cmp(y),
        (Value::Float64(x), Value::Float64(y)) => x.partial_cmp(y).unwrap_or(Ordering::Equal),
        (Value::Float64(x), Value::Int64(y)) => {
            x.partial_cmp(&(*y as f64)).unwrap_or(Ordering::Equal)
        }
        (Value::Int64(x), Value::Float64(y)) => {
            (*x as f64).partial_cmp(y).unwrap_or(Ordering::Equal)
        }
        (Value::Decimal(x), Value::Float64(y)) => {
            x.to_f64().partial_cmp(y).unwrap_or(Ordering::Equal)
        }
        (Value::Float64(x), Value::Decimal(y)) => {
            x.partial_cmp(&y.to_f64()).unwrap_or(Ordering::Equal)
        }
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Null, _) => Ordering::Less,
        (_, Value::Null) => Ordering::Greater,
        (x, y) => panic!("incomparable values {x:?} vs {y:?}"),
    }
}

fn eval_pred(
    p: &BoundPred,
    tables: &[&Table],
    sel: &[Vec<u32>],
    i: usize,
) -> Result<bool, QueryError> {
    Ok(match p {
        BoundPred::Cmp(op, a, b) => {
            let (va, vb) = (operand_value(a, tables, sel, i), operand_value(b, tables, sel, i));
            let o = cmp_values(&va, &vb);
            match op {
                CmpOp::Eq => o == core::cmp::Ordering::Equal,
                CmpOp::Ne => o != core::cmp::Ordering::Equal,
                CmpOp::Lt => o == core::cmp::Ordering::Less,
                CmpOp::Le => o != core::cmp::Ordering::Greater,
                CmpOp::Gt => o == core::cmp::Ordering::Greater,
                CmpOp::Ge => o != core::cmp::Ordering::Less,
            }
        }
        BoundPred::And(a, b) => eval_pred(a, tables, sel, i)? && eval_pred(b, tables, sel, i)?,
        BoundPred::Or(a, b) => eval_pred(a, tables, sel, i)? || eval_pred(b, tables, sel, i)?,
        BoundPred::Not(a) => !eval_pred(a, tables, sel, i)?,
        BoundPred::Between(x, lo, hi) => {
            let v = operand_value(x, tables, sel, i);
            let l = operand_value(lo, tables, sel, i);
            let h = operand_value(hi, tables, sel, i);
            cmp_values(&v, &l) != core::cmp::Ordering::Less
                && cmp_values(&v, &h) != core::cmp::Ordering::Greater
        }
        BoundPred::Like(x, pat) => {
            let Value::Str(s) = operand_value(x, tables, sel, i) else {
                return Err(QueryError::Unsupported("LIKE on non-string".into()));
            };
            like_match(&s, pat)
        }
    })
}

/// Evaluates a HAVING predicate against one output row.
fn eval_having(h: &HavingPred, row: &[Value]) -> Result<bool, QueryError> {
    Ok(match h {
        HavingPred::Cmp(op, item, lit) => {
            let rhs = match lit {
                BoundOperand::Dec(d) => Value::Decimal(d.clone()),
                BoundOperand::I64(v) => Value::Int64(*v),
                BoundOperand::F64(v) => Value::Float64(*v),
                BoundOperand::Str(s) => Value::Str(s.clone()),
                BoundOperand::Col(_) => {
                    return Err(QueryError::Unsupported(
                        "HAVING compares outputs to literals".into(),
                    ))
                }
            };
            let o = cmp_values(&row[*item], &rhs);
            match op {
                CmpOp::Eq => o == core::cmp::Ordering::Equal,
                CmpOp::Ne => o != core::cmp::Ordering::Equal,
                CmpOp::Lt => o == core::cmp::Ordering::Less,
                CmpOp::Le => o != core::cmp::Ordering::Greater,
                CmpOp::Gt => o == core::cmp::Ordering::Greater,
                CmpOp::Ge => o != core::cmp::Ordering::Less,
            }
        }
        HavingPred::And(a, b) => eval_having(a, row)? && eval_having(b, row)?,
        HavingPred::Or(a, b) => eval_having(a, row)? || eval_having(b, row)?,
        HavingPred::Not(a) => !eval_having(a, row)?,
    })
}

/// `%`-wildcard matching (ends and middle), enough for TPC-H patterns.
fn like_match(s: &str, pat: &str) -> bool {
    let parts: Vec<&str> = pat.split('%').collect();
    match parts.as_slice() {
        [exact] => s == *exact,
        _ => {
            let mut pos = 0;
            for (k, part) in parts.iter().enumerate() {
                if part.is_empty() {
                    continue;
                }
                if k == 0 {
                    if !s.starts_with(part) {
                        return false;
                    }
                    pos = part.len();
                } else if k == parts.len() - 1 && !pat.ends_with('%') {
                    return s.len() >= pos && s[pos..].ends_with(part);
                } else {
                    match s[pos..].find(part) {
                        Some(p) => pos += p + part.len(),
                        None => return false,
                    }
                }
            }
            true
        }
    }
}

// ---------------------------------------------------------------------
// Scalar column evaluation per profile
// ---------------------------------------------------------------------

type ScalarOut = (Vec<Value>, ModeledTime, usize, up_gpusim::TierCounters);

/// CPU arithmetic cost grows with the digit count, but sublinearly in
/// measured systems (dispatch and allocation amortize the digit loops —
/// PostgreSQL's TPC-H Q1 only grows ~1.7× from LEN 2 to LEN 32 in
/// §IV-D1); modeled as √(p/18), normalized to 1.0 at the LEN-2 precision.
fn width_factor(p: u32) -> f64 {
    (p as f64 / 18.0).sqrt().max(1.0)
}

fn eval_scalar_column(
    ctx: &ExecCtx<'_>,
    scalar: &Scalar,
    tables: &[&Table],
    sel: &[Vec<u32>],
    n: usize,
) -> Result<ScalarOut, QueryError> {
    match scalar {
        Scalar::Cpu(e) => {
            let cost = ctx.profile.system_cost();
            let tuple_ns = if ctx.profile.is_gpu() { 0.0 } else { cost.per_tuple_ns };
            let mut vals = Vec::with_capacity(n);
            for i in 0..n {
                vals.push(eval_cpu(e, tables, sel, i)?);
            }
            let m = ModeledTime {
                cpu_s: n as f64 * (tuple_ns + cost.per_op_ns) * 1e-9 / cost.parallelism,
                ..Default::default()
            };
            Ok((vals, m, 0, Default::default()))
        }
        Scalar::Decimal { expr, inputs } => match ctx.profile {
            Profile::UltraPrecise if ctx.expr_tpi > 1 => {
                eval_decimal_gpu_mt(ctx, expr, inputs, tables, sel, n)
            }
            Profile::UltraPrecise => {
                eval_decimal_gpu_jit(ctx, expr, inputs, tables, sel, n, None)
            }
            Profile::RateupLike | Profile::HeavyAiLike | Profile::MonetLike => {
                eval_decimal_limited(ctx, expr, inputs, tables, sel, n)
            }
            Profile::PostgresLike | Profile::H2Like | Profile::CockroachLike => {
                eval_decimal_soft(ctx, expr, inputs, tables, sel, n)
            }
            Profile::DoubleF64 => eval_decimal_as_double(ctx, expr, inputs, tables, sel, n),
        },
        Scalar::Case { branches, else_, unified } => {
            // Predicated execution: every branch evaluates column-wise
            // (what a SIMT machine does anyway), then a per-row select —
            // the GPU `selp` pattern of the generated kernels.
            let mut modeled = ModeledTime::default();
            let mut kernels = 0usize;
            let mut tiers = up_gpusim::TierCounters::default();
            let mut branch_cols: Vec<(Vec<bool>, Vec<Value>)> = Vec::new();
            for (pred, scalar) in branches {
                let mut mask = Vec::with_capacity(n);
                for i in 0..n {
                    mask.push(eval_pred(pred, tables, sel, i)?);
                }
                let (vals, m, k, t) = eval_scalar_column(ctx, scalar, tables, sel, n)?;
                modeled.add(&m);
                kernels += k;
                tiers += t;
                branch_cols.push((mask, vals));
            }
            let else_vals = match else_ {
                Some(s) => {
                    let (vals, m, k, t) = eval_scalar_column(ctx, s, tables, sel, n)?;
                    modeled.add(&m);
                    kernels += k;
                    tiers += t;
                    Some(vals)
                }
                None => None,
            };
            let zero = match unified {
                Some(ty) => Value::Decimal(UpDecimal::zero(*ty)),
                None => Value::Int64(0),
            };
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let mut v = None;
                for (mask, vals) in &branch_cols {
                    if mask[i] {
                        v = Some(vals[i].clone());
                        break;
                    }
                }
                let v = v.unwrap_or_else(|| {
                    else_vals.as_ref().map(|vs| vs[i].clone()).unwrap_or_else(|| zero.clone())
                });
                out.push(coerce_unified(v, *unified)?);
            }
            Ok((out, modeled, kernels, tiers))
        }
        Scalar::Cast { inner, ty } => {
            let (vals, modeled, kernels, tiers) = eval_scalar_column(ctx, inner, tables, sel, n)?;
            let out = vals
                .into_iter()
                .map(|v| cast_value(v, *ty))
                .collect::<Result<Vec<_>, _>>()?;
            Ok((out, modeled, kernels, tiers))
        }
    }
}

/// Casts values into a CASE's unified decimal type (no-op when the CASE
/// is non-decimal).
fn coerce_unified(v: Value, unified: Option<DecimalType>) -> Result<Value, QueryError> {
    match unified {
        None => Ok(v),
        Some(ty) => cast_value(v, ty),
    }
}

/// SQL CAST semantics into a decimal target.
fn cast_value(v: Value, ty: DecimalType) -> Result<Value, QueryError> {
    Ok(match v {
        Value::Decimal(d) => Value::Decimal(d.cast(ty).map_err(QueryError::Num)?),
        Value::Int64(i) => {
            Value::Decimal(UpDecimal::from_i64(i).cast(ty).map_err(QueryError::Num)?)
        }
        Value::Float64(f) => {
            Value::Decimal(UpDecimal::from_f64(f, ty).map_err(QueryError::Num)?)
        }
        Value::Null => Value::Null,
        other => return Err(QueryError::Unsupported(format!("CAST of {other:?}"))),
    })
}

/// Evaluates a combo expression over one group's aggregate results.
fn eval_combo(combo: &ComboExpr, agg_vals: &[Value]) -> Result<Value, QueryError> {
    Ok(match combo {
        ComboExpr::Agg(i) => agg_vals[*i].clone(),
        ComboExpr::Dec(d) => Value::Decimal(d.clone()),
        ComboExpr::I64(v) => Value::Int64(*v),
        ComboExpr::Neg(x) => match eval_combo(x, agg_vals)? {
            Value::Decimal(d) => Value::Decimal(d.neg()),
            Value::Int64(v) => Value::Int64(-v),
            Value::Float64(v) => Value::Float64(-v),
            Value::Null => Value::Null,
            other => return Err(QueryError::Unsupported(format!("negate {other:?}"))),
        },
        ComboExpr::Bin(op, a, b) => {
            let (va, vb) = (eval_combo(a, agg_vals)?, eval_combo(b, agg_vals)?);
            value_arith(*op, va, vb)?
        }
    })
}

/// Exact arithmetic between result values (decimal semantics when either
/// side is decimal; NULL propagates).
fn value_arith(op: BinOp, a: Value, b: Value) -> Result<Value, QueryError> {
    use Value::*;
    let to_dec = |v: &Value| -> Option<UpDecimal> {
        match v {
            Decimal(d) => Some(d.clone()),
            Int64(i) => Some(UpDecimal::from_i64(*i)),
            _ => None,
        }
    };
    match (&a, &b) {
        (Null, _) | (_, Null) => Ok(Null),
        (Int64(x), Int64(y)) => Ok(match op {
            BinOp::Add => Int64(x + y),
            BinOp::Sub => Int64(x - y),
            BinOp::Mul => Int64(x * y),
            BinOp::Div => {
                if *y == 0 {
                    return Err(QueryError::Num(NumError::DivisionByZero));
                }
                Int64(x / y)
            }
            BinOp::Mod => {
                if *y == 0 {
                    return Err(QueryError::Num(NumError::DivisionByZero));
                }
                Int64(x % y)
            }
        }),
        (Float64(_), _) | (_, Float64(_)) => {
            let fx = match &a {
                Float64(v) => *v,
                Int64(v) => *v as f64,
                Decimal(d) => d.to_f64(),
                _ => unreachable!(),
            };
            let fy = match &b {
                Float64(v) => *v,
                Int64(v) => *v as f64,
                Decimal(d) => d.to_f64(),
                _ => unreachable!(),
            };
            Ok(Float64(match op {
                BinOp::Add => fx + fy,
                BinOp::Sub => fx - fy,
                BinOp::Mul => fx * fy,
                BinOp::Div => fx / fy,
                BinOp::Mod => fx % fy,
            }))
        }
        _ => {
            let (da, db) = (
                to_dec(&a).ok_or_else(|| QueryError::Unsupported(format!("arith on {a:?}")))?,
                to_dec(&b).ok_or_else(|| QueryError::Unsupported(format!("arith on {b:?}")))?,
            );
            Ok(Decimal(match op {
                BinOp::Add => da.add(&db),
                BinOp::Sub => da.sub(&db),
                BinOp::Mul => da.mul(&db),
                BinOp::Div => da.div(&db)?,
                BinOp::Mod => da.rem(&db)?,
            }))
        }
    }
}

fn eval_cpu(
    e: &CpuExpr,
    tables: &[&Table],
    sel: &[Vec<u32>],
    i: usize,
) -> Result<Value, QueryError> {
    Ok(match e {
        CpuExpr::Col(w) => tuple_value(tables, sel, i, *w),
        CpuExpr::I64(v) => Value::Int64(*v),
        CpuExpr::F64(v) => Value::Float64(*v),
        CpuExpr::Str(s) => Value::Str(s.clone()),
        CpuExpr::Neg(x) => match eval_cpu(x, tables, sel, i)? {
            Value::Int64(v) => Value::Int64(-v),
            Value::Float64(v) => Value::Float64(-v),
            Value::Decimal(v) => Value::Decimal(v.neg()),
            other => return Err(QueryError::Unsupported(format!("negate {other:?}"))),
        },
        CpuExpr::Bin(op, a, b) => {
            let (va, vb) = (eval_cpu(a, tables, sel, i)?, eval_cpu(b, tables, sel, i)?);
            let (x, y) = match (&va, &vb) {
                (Value::Int64(x), Value::Int64(y)) => {
                    return Ok(Value::Int64(match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => {
                            if *y == 0 {
                                return Err(QueryError::Num(NumError::DivisionByZero));
                            }
                            x / y
                        }
                        BinOp::Mod => {
                            if *y == 0 {
                                return Err(QueryError::Num(NumError::DivisionByZero));
                            }
                            x % y
                        }
                    }));
                }
                (Value::Float64(x), Value::Float64(y)) => (*x, *y),
                (Value::Float64(x), Value::Int64(y)) => (*x, *y as f64),
                (Value::Int64(x), Value::Float64(y)) => (*x as f64, *y),
                (Value::Decimal(x), Value::Float64(y)) => (x.to_f64(), *y),
                (Value::Float64(x), Value::Decimal(y)) => (*x, y.to_f64()),
                (Value::Decimal(x), Value::Int64(y)) => (x.to_f64(), *y as f64),
                (Value::Int64(x), Value::Decimal(y)) => (*x as f64, y.to_f64()),
                (Value::Decimal(x), Value::Decimal(y)) => (x.to_f64(), y.to_f64()),
                other => return Err(QueryError::Unsupported(format!("arith on {other:?}"))),
            };
            Value::Float64(match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Mod => x % y,
            })
        }
    })
}

/// Whether a table's selection is the full identity scan (kernel inputs
/// can then reuse the stored column buffer directly).
fn is_identity(sel: &[u32], table_rows: usize) -> bool {
    sel.len() == table_rows && sel.iter().enumerate().all(|(i, &r)| r as usize == i)
}

// ---------------------------------------------------------------------
// Plan-level launch pipelining
// ---------------------------------------------------------------------

/// Collects every JIT-compilable decimal expression reachable from a
/// scalar, in the exact order serial evaluation compiles them (CASE
/// branches in order, then ELSE; CAST descends).
fn collect_decimal_exprs<'a>(s: &'a Scalar, out: &mut Vec<&'a Expr>) {
    match s {
        Scalar::Decimal { expr, .. } => out.push(expr),
        Scalar::Case { branches, else_, .. } => {
            for (_, sc) in branches {
                collect_decimal_exprs(sc, out);
            }
            if let Some(e) = else_ {
                collect_decimal_exprs(e, out);
            }
        }
        Scalar::Cast { inner, .. } => collect_decimal_exprs(inner, out),
        Scalar::Cpu(_) => {}
    }
}

/// One DAG node's evaluated output, with the modeled time split the way
/// the serial merge needs it back.
struct SlotNodeOut {
    vals: Vec<Value>,
    /// Evaluation time with `compile_s` already moved to `compile_part`.
    m: ModeledTime,
    /// This node's contribution to the query's single-TU compile fold.
    compile_part: Option<f64>,
    kernels: usize,
    /// Tier attribution for this node's launches (captured thread-locally
    /// on the worker that ran them).
    tiers: up_gpusim::TierCounters,
    /// The aggregate reduction priced over the full selection (zero for
    /// plain projections).
    price: ModeledTime,
}

/// Evaluates a plan's scalar slots through the launch DAG: independent
/// slots run concurrently under [`run_dag`], first-occurrence kernels
/// JIT on host threads started up front ([`JitEngine::compile_async`]),
/// and duplicate-signature slots depend on the first occurrence so their
/// compiles are guaranteed cache hits — preserving the serial miss/hit
/// pattern and therefore the exact modeled compile attribution.
///
/// Returns the per-slot outputs in plan order (the caller replays the
/// serial merge over them) plus the modeled overlap timeline.
fn eval_slots_pipelined(
    ctx: &ExecCtx<'_>,
    slots: &[crate::plan::EvalSlot<'_>],
    tables: &[&Table],
    sel: &[Vec<u32>],
    n: usize,
) -> Result<(Vec<SlotNodeOut>, PipelineReport), QueryError> {
    let jit_route = ctx.profile == Profile::UltraPrecise && ctx.expr_tpi == 1;

    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); slots.len()];
    let mut first_by_sig: HashMap<String, usize> = HashMap::new();
    let mut handles: Vec<std::sync::Mutex<Option<CompileHandle>>> = Vec::new();
    for (i, slot) in slots.iter().enumerate() {
        let mut exprs = Vec::new();
        collect_decimal_exprs(slot.scalar, &mut exprs);
        let mut handle = None;
        for (k, expr) in exprs.iter().enumerate() {
            let Some(sig) = ctx.jit.signature(expr) else { continue };
            match first_by_sig.entry(sig) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let owner = *e.get();
                    if owner != i && !deps[i].contains(&owner) {
                        deps[i].push(owner);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i);
                    // A first-occurrence top-level kernel starts
                    // compiling on a host thread now, overlapping with
                    // every other ready node; its node joins the thread
                    // when it runs. Nested expressions (CASE branches)
                    // compile synchronously inside their node instead.
                    // Under the server arena the compile was already
                    // prefetched at admission — the node's rendezvous
                    // collects it, so no per-query thread is spawned.
                    if jit_route
                        && ctx.arena.is_none()
                        && k == 0
                        && matches!(slot.scalar, Scalar::Decimal { .. })
                    {
                        handle = Some(ctx.jit.compile_async(expr));
                    }
                }
            }
        }
        handles.push(std::sync::Mutex::new(handle));
    }

    let job = |i: usize| -> Result<SlotNodeOut, QueryError> {
        let slot = &slots[i];
        let pre = handles[i].lock().expect("handle lock").take().map(|h| h.wait());
        let (vals, mut m, kernels, tiers) = match (pre, slot.scalar) {
            (Some(p), Scalar::Decimal { expr, inputs }) => {
                eval_decimal_gpu_jit(ctx, expr, inputs, tables, sel, n, Some(p))?
            }
            _ => eval_scalar_column(ctx, slot.scalar, tables, sel, n)?,
        };
        let price = match slot.agg {
            Some(f) => price_aggregation(ctx, f, slot.scalar, &vals, n),
            None => ModeledTime::default(),
        };
        let compile_part = (m.compile_s > 0.0).then_some(m.compile_s);
        m.compile_s = 0.0;
        Ok(SlotNodeOut { vals, m, compile_part, kernels, tiers, price })
    };

    let results = run_dag(&deps, ctx.pipeline, job);
    let mut outs = Vec::with_capacity(results.len());
    for r in results {
        // Index order = plan order, so the first error here is the same
        // one serial evaluation would have surfaced.
        outs.push(r?);
    }

    // Modeled overlap timeline: one node per slot (compile → H2D →
    // kernel) plus a dependent reduction node per priced aggregate.
    let mut tnodes: Vec<DagNodeCost> = Vec::new();
    let mut eval_idx = vec![0usize; outs.len()];
    for (i, out) in outs.iter().enumerate() {
        eval_idx[i] = tnodes.len();
        tnodes.push(DagNodeCost {
            deps: deps[i].iter().map(|&d| eval_idx[d]).collect(),
            compile_s: out.compile_part.unwrap_or(0.0),
            h2d_s: out.m.pcie_s,
            exec_s: out.m.kernel_s + out.m.cpu_s,
        });
        let red = out.price.kernel_s + out.price.cpu_s;
        if red > 0.0 {
            tnodes.push(DagNodeCost { deps: vec![eval_idx[i]], exec_s: red, ..Default::default() });
        }
    }
    let report = match &ctx.arena {
        // Arena: nodes land on the *server-wide* engine pools at this
        // query's modeled arrival, so the report includes cross-query
        // contention as queue delay.
        Some(a) => a.timeline.place_on(a.device, a.arrival_s, &tnodes),
        None => {
            let lanes = ctx.pipeline.depth().min(4);
            plan_timeline(&tnodes, lanes, lanes)
        }
    };
    Ok((outs, report))
}

/// The JIT kernel references a plan will compile, in the exact order
/// serial evaluation reaches them: `(signature, expression)` per
/// reachable decimal expression, duplicates included, passthroughs
/// skipped. Empty when the profile doesn't JIT or multi-threaded
/// expression kernels are in use. This is what the server registers
/// with the compile arena at admission time.
pub(crate) fn plan_kernel_refs(
    plan: &QueryPlan,
    jit: &JitEngine,
    profile: Profile,
    expr_tpi: u32,
) -> Vec<(String, Expr)> {
    if profile != Profile::UltraPrecise || expr_tpi != 1 {
        return Vec::new();
    }
    let mut refs = Vec::new();
    for slot in plan.eval_slots() {
        let mut exprs = Vec::new();
        collect_decimal_exprs(slot.scalar, &mut exprs);
        for expr in exprs {
            if let Some(sig) = jit.signature(expr) {
                refs.push((sig, expr.clone()));
            }
        }
    }
    refs
}

/// Folds one pipelined slot's output back into the query accumulators in
/// the exact serial order (compile part, evaluation, kernel count, then
/// the reduction price), returning the evaluated column.
fn merge_slot_out(
    o: SlotNodeOut,
    modeled: &mut ModeledTime,
    kernels: &mut usize,
    tiers: &mut up_gpusim::TierCounters,
    compile_parts: &mut Vec<f64>,
) -> Vec<Value> {
    if let Some(c) = o.compile_part {
        compile_parts.push(c);
    }
    modeled.add(&o.m);
    *kernels += o.kernels;
    *tiers += o.tiers;
    modeled.add(&o.price);
    o.vals
}

fn eval_decimal_gpu_jit(
    ctx: &ExecCtx<'_>,
    expr: &Expr,
    inputs: &[WideCol],
    tables: &[&Table],
    sel: &[Vec<u32>],
    n: usize,
    pre: Option<(Compiled, CompileInfo)>,
) -> Result<ScalarOut, QueryError> {
    let mut modeled = ModeledTime::default();
    // `pre` carries the result of a pipelined `compile_async` started at
    // DAG-build time; it is exactly what `compile` would return here.
    // Under the server arena, admission already prefetched every
    // first-occurrence compile: rendezvous returns either the owned
    // result (the miss, with its modeled NVCC seconds) or falls through
    // to a plain compile that is a guaranteed cache hit — the same
    // miss/hit pattern serial execution produces.
    let (compiled, info) = match pre {
        Some(p) => p,
        None => match &ctx.arena {
            Some(a) => a
                .compile
                .rendezvous(a.seq, expr)
                .unwrap_or_else(|| ctx.jit.compile(expr)),
            None => ctx.jit.compile(expr),
        },
    };
    modeled.compile_s += info.modeled_compile_s;

    match compiled {
        Compiled::Passthrough(Expr::Const(c)) => {
            Ok((vec![Value::Decimal(c); n], modeled, 0, Default::default()))
        }
        Compiled::Passthrough(Expr::Col { index, .. }) => {
            let w = inputs[index];
            let vals = (0..n).map(|i| tuple_value(tables, sel, i, w)).collect();
            Ok((vals, modeled, 0, Default::default()))
        }
        Compiled::Passthrough(other) => Err(QueryError::Unsupported(format!(
            "unexpected passthrough {other:?}"
        ))),
        Compiled::Kernel(k) => {
            // Assemble device buffers: expression slot s reads buffer s.
            let mut mem = GlobalMem::new();
            let mut pcie_bytes: u64 = 0;
            for w in inputs {
                let table = tables[w.table];
                let (bytes, ty) = table.columns[w.column].decimal_bytes();
                let buf = if is_identity(&sel[w.table], table.rows) {
                    bytes.to_vec()
                } else {
                    let lb = ty.lb();
                    let mut g = Vec::with_capacity(sel[w.table].len() * lb);
                    for &r in &sel[w.table] {
                        g.extend_from_slice(&bytes[r as usize * lb..(r as usize + 1) * lb]);
                    }
                    g
                };
                pcie_bytes += buf.len() as u64;
                mem.add_buffer(buf);
            }
            let out_lb = k.out_ty.lb();
            let out_buf = mem.alloc(n.max(1) * out_lb);
            pcie_bytes += (n * out_lb) as u64;

            // Memoized next to the kernel: a cache hit reuses the
            // geometry derived on the first launch (same inputs → same
            // config by construction, asserted in up-jit's tests).
            let cfg = k.launch_config(n as u64, 256, ctx.device);
            let stats = up_gpusim::launch_opts(
                &k.kernel,
                cfg,
                ctx.device,
                &mut mem,
                &[n as u32],
                up_gpusim::LaunchOpts {
                    par: ctx.sim_par,
                    backend: ctx.exec_backend,
                    auto_serial_below: None,
                },
            )
                .map_err(|e| match e {
                    up_gpusim::SimError::DivisionByZero { .. } => {
                        QueryError::Num(NumError::DivisionByZero)
                    }
                    other => QueryError::Sim(other.to_string()),
                })?;
            // `launch_opts` is synchronous and the attribution is
            // thread-local, so this delta belongs to exactly the launch
            // above even when DAG slots evaluate on worker threads.
            let tiers = up_gpusim::last_launch_tiers();
            let kt = kernel_time(&k.kernel, &stats, ctx.device);
            modeled.kernel_s += kt.total_s;
            modeled.pcie_s += ctx.device.pcie_time(pcie_bytes);

            let out = mem.buffer(out_buf);
            let vals = (0..n)
                .map(|i| {
                    Value::Decimal(up_num::decode_compact(
                        &out[i * out_lb..(i + 1) * out_lb],
                        k.out_ty,
                    ))
                })
                .collect();
            Ok((vals, modeled, 1, tiers))
        }
    }
}

/// Multi-threaded (TPI thread-group) expression evaluation — §III-E1:
/// operands load cooperatively (Listing 3) and every arithmetic instance
/// is computed by a group of `expr_tpi` threads through the extended-CGBN
/// routines. Functionally bit-exact with the single-thread kernels; the
/// cost model reflects the group work partitioning.
fn eval_decimal_gpu_mt(
    ctx: &ExecCtx<'_>,
    expr: &Expr,
    inputs: &[WideCol],
    tables: &[&Table],
    sel: &[Vec<u32>],
    n: usize,
) -> Result<ScalarOut, QueryError> {
    let tpi = Tpi::new(ctx.expr_tpi).map_err(QueryError::Unsupported)?;
    let optimized = ctx.jit.optimize(expr);
    let kernel = up_jit::codegen_mt::compile_expr_mt(&optimized, tpi);

    let rows: Vec<Vec<UpDecimal>> = (0..n)
        .map(|i| {
            inputs
                .iter()
                .map(|w| match tuple_value(tables, sel, i, *w) {
                    Value::Decimal(d) => d,
                    other => panic!("decimal input, got {other:?}"),
                })
                .collect()
        })
        .collect();
    let (vals, total_cost) = kernel
        .eval_rows(&rows)
        .map_err(|e| match e {
            up_jit::codegen_mt::MtError::Group(g) => QueryError::Unsupported(g.to_string()),
            up_jit::codegen_mt::MtError::Num(e) => QueryError::Num(e),
        })?;

    let mut modeled = ModeledTime::default();
    if n > 0 {
        // Per-instance average cost drives the analytic launch model.
        let nf = n as f64;
        let per = up_gpusim::cgbn::GroupCost {
            insts_per_thread: total_cost.insts_per_thread / nf,
            shuffles: total_cost.shuffles / nf,
            ballots: total_cost.ballots / nf,
            bytes_read: total_cost.bytes_read / n as u64,
            bytes_written: total_cost.bytes_written / n as u64,
        };
        let stats = up_gpusim::cgbn::op_stats(&per, n as u64, tpi, ctx.device);
        let k = up_gpusim::KernelBuilder::new().finish("mt_expr", kernel.hw_regs);
        modeled.kernel_s += kernel_time(&k, &stats, ctx.device).total_s;
        modeled.pcie_s +=
            ctx.device.pcie_time(total_cost.bytes_read + total_cost.bytes_written);
        // TPI kernels compile through the same JIT TU.
        modeled.compile_s += up_gpusim::cost::modeled_compile_time_s(
            64 * kernel.out_ty.lw() * optimized.op_count().max(1),
        );
    }
    // TPI kernels run through the analytic CGBN model, not the
    // instruction simulator — no tier to attribute.
    Ok((vals.into_iter().map(Value::Decimal).collect(), modeled, 1, Default::default()))
}

/// Bytes per value in a GPU baseline's representation.
fn baseline_value_bytes(profile: Profile, ty: DecimalType) -> u64 {
    match profile {
        // RateupDB uses the §III-B1 alternative representation.
        Profile::RateupLike => AltDecimal::bytes_for(ty) as u64,
        // HEAVY.AI stores every decimal in one 64-bit word.
        Profile::HeavyAiLike => 8,
        _ => ty.lb() as u64,
    }
}

/// Operator-at-a-time execution model for the non-JIT GPU baselines: one
/// kernel per operator node, materializing every intermediate column.
fn modeled_op_at_a_time(
    profile: Profile,
    expr: &Expr,
    n: u64,
    device: &DeviceConfig,
) -> ModeledTime {
    fn walk(profile: Profile, e: &Expr, n: u64, device: &DeviceConfig, m: &mut ModeledTime) -> DecimalType {
        match e {
            Expr::Col { ty, .. } => *ty,
            Expr::Const(c) => c.dtype(),
            Expr::Neg(x) => walk(profile, x, n, device, m),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) | Expr::Mod(a, b) => {
                let ta = walk(profile, a, n, device, m);
                let tb = walk(profile, b, n, device, m);
                let out = e.dtype();
                let bytes = n * (baseline_value_bytes(profile, ta)
                    + baseline_value_bytes(profile, tb)
                    + baseline_value_bytes(profile, out));
                m.kernel_s += bytes as f64 / (device.mem_bandwidth_gbps * 1e9)
                    + device.launch_overhead_us * 1e-6;
                out
            }
        }
    }
    let mut m = ModeledTime::default();
    let out = walk(profile, expr, n, device, &mut m);
    // Inputs and final output cross PCIe once.
    let io: u64 = expr
        .columns()
        .len()
        .max(1) as u64
        * n
        * baseline_value_bytes(profile, out);
    m.pcie_s = device.pcie_time(io);
    m
}

fn eval_decimal_limited(
    ctx: &ExecCtx<'_>,
    expr: &Expr,
    inputs: &[WideCol],
    tables: &[&Table],
    sel: &[Vec<u32>],
    n: usize,
) -> Result<ScalarOut, QueryError> {
    let kind = ctx.profile.limited_kind().expect("limited profile");
    let engine = LimitedEngine::new(kind);
    let mut vals = Vec::with_capacity(n);
    for i in 0..n {
        let row: Vec<LimitedDecimal> = inputs
            .iter()
            .map(|w| {
                let Value::Decimal(d) = tuple_value(tables, sel, i, *w) else {
                    unreachable!("decimal input");
                };
                engine.import(&d)
            })
            .collect::<Result<_, _>>()?;
        let v = eval_limited_expr(&engine, expr, &row)?;
        vals.push(Value::Decimal(engine.export(v)));
    }
    let mut modeled = if ctx.profile.is_gpu() {
        modeled_op_at_a_time(ctx.profile, expr, n as u64, ctx.device)
    } else {
        ModeledTime::default()
    };
    let cost = ctx.profile.system_cost();
    let tuple_ns = if ctx.profile.is_gpu() { 0.0 } else { cost.per_tuple_ns };
    let wf = width_factor(expr.dtype().precision);
    modeled.cpu_s += n as f64
        * (tuple_ns + expr.op_count() as f64 * cost.per_op_ns * wf)
        * 1e-9
        / cost.parallelism;
    Ok((vals, modeled, 0, Default::default()))
}

fn eval_limited_expr(
    engine: &LimitedEngine,
    e: &Expr,
    row: &[LimitedDecimal],
) -> Result<LimitedDecimal, QueryError> {
    Ok(match e {
        Expr::Col { index, .. } => row[*index],
        Expr::Const(c) => engine.import(c)?,
        Expr::Neg(x) => {
            let v = eval_limited_expr(engine, x, row)?;
            LimitedDecimal { unscaled: -v.unscaled, ty: v.ty }
        }
        Expr::Add(a, b) => {
            engine.add(eval_limited_expr(engine, a, row)?, eval_limited_expr(engine, b, row)?)?
        }
        Expr::Sub(a, b) => {
            let vb = eval_limited_expr(engine, b, row)?;
            engine.add(
                eval_limited_expr(engine, a, row)?,
                LimitedDecimal { unscaled: -vb.unscaled, ty: vb.ty },
            )?
        }
        Expr::Mul(a, b) => {
            engine.mul(eval_limited_expr(engine, a, row)?, eval_limited_expr(engine, b, row)?)?
        }
        Expr::Div(a, b) => {
            engine.div(eval_limited_expr(engine, a, row)?, eval_limited_expr(engine, b, row)?)?
        }
        Expr::Mod(a, b) => {
            engine.rem(eval_limited_expr(engine, a, row)?, eval_limited_expr(engine, b, row)?)?
        }
    })
}

fn eval_decimal_soft(
    ctx: &ExecCtx<'_>,
    expr: &Expr,
    inputs: &[WideCol],
    tables: &[&Table],
    sel: &[Vec<u32>],
    n: usize,
) -> Result<ScalarOut, QueryError> {
    let div_profile = ctx.profile.div_profile().expect("soft profile");
    let mut vals = Vec::with_capacity(n);
    for i in 0..n {
        let row: Vec<SoftDecimal> = inputs
            .iter()
            .map(|w| {
                let Value::Decimal(d) = tuple_value(tables, sel, i, *w) else {
                    unreachable!("decimal input");
                };
                SoftDecimal::parse(&d.to_string()).expect("decimal renders as literal")
            })
            .collect();
        let v = eval_soft_expr(expr, &row, div_profile)?;
        let d = UpDecimal::parse_literal(&v.to_string())
            .map_err(QueryError::Num)?;
        vals.push(Value::Decimal(d));
    }
    let cost = ctx.profile.system_cost();
    let wf = width_factor(expr.dtype().precision);
    let modeled = ModeledTime {
        cpu_s: n as f64
            * (cost.per_tuple_ns + expr.op_count() as f64 * cost.per_op_ns * wf)
            * 1e-9
            / cost.parallelism,
        ..Default::default()
    };
    Ok((vals, modeled, 0, Default::default()))
}

fn eval_soft_expr(
    e: &Expr,
    row: &[SoftDecimal],
    div: up_baselines::DivProfile,
) -> Result<SoftDecimal, QueryError> {
    Ok(match e {
        Expr::Col { index, .. } => row[*index].clone(),
        Expr::Const(c) => SoftDecimal::parse(&c.to_string()).expect("const literal"),
        Expr::Neg(x) => eval_soft_expr(x, row, div)?.neg(),
        Expr::Add(a, b) => eval_soft_expr(a, row, div)?.add(&eval_soft_expr(b, row, div)?),
        Expr::Sub(a, b) => eval_soft_expr(a, row, div)?.sub(&eval_soft_expr(b, row, div)?),
        Expr::Mul(a, b) => eval_soft_expr(a, row, div)?.mul(&eval_soft_expr(b, row, div)?),
        Expr::Div(a, b) => eval_soft_expr(a, row, div)?
            .div(&eval_soft_expr(b, row, div)?, div)
            .map_err(|_| QueryError::Num(NumError::DivisionByZero))?,
        Expr::Mod(a, b) => {
            // Integer modulo via truncated division.
            let x = eval_soft_expr(a, row, div)?.round_dscale(0);
            let y = eval_soft_expr(b, row, div)?.round_dscale(0);
            if y.is_zero() {
                return Err(QueryError::Num(NumError::DivisionByZero));
            }
            let q = x.div(&y, up_baselines::DivProfile::PaperRule)
                .map_err(|_| QueryError::Num(NumError::DivisionByZero))?
                .round_dscale(4);
            // r = x − floor-ish(q)·y, re-truncated.
            let qi = trunc_soft(&q);
            x.sub(&qi.mul(&y)).round_dscale(0)
        }
    })
}

/// Truncates a SoftDecimal toward zero to scale 0.
fn trunc_soft(v: &SoftDecimal) -> SoftDecimal {
    // round_dscale rounds half away; emulate truncation by subtracting
    // 0.5 ulp on the integer boundary via string surgery instead.
    let s = v.to_string();
    let int_part = match s.split_once('.') {
        Some((i, _)) => i.to_string(),
        None => s,
    };
    SoftDecimal::parse(&int_part).expect("integer literal")
}

fn eval_decimal_as_double(
    ctx: &ExecCtx<'_>,
    expr: &Expr,
    inputs: &[WideCol],
    tables: &[&Table],
    sel: &[Vec<u32>],
    n: usize,
) -> Result<ScalarOut, QueryError> {
    let mut vals = Vec::with_capacity(n);
    for i in 0..n {
        let row: Vec<f64> = inputs
            .iter()
            .map(|w| match tuple_value(tables, sel, i, *w) {
                Value::Decimal(d) => d.to_f64(),
                Value::Float64(f) => f,
                Value::Int64(v) => v as f64,
                other => panic!("non-numeric input {other:?}"),
            })
            .collect();
        vals.push(Value::Float64(eval_f64_expr(expr, &row)));
    }
    let cost = ctx.profile.system_cost();
    let modeled = ModeledTime {
        cpu_s: n as f64 * (cost.per_tuple_ns + expr.op_count() as f64 * 2.0) * 1e-9
            / cost.parallelism,
        ..Default::default()
    };
    Ok((vals, modeled, 0, Default::default()))
}

fn eval_f64_expr(e: &Expr, row: &[f64]) -> f64 {
    match e {
        Expr::Col { index, .. } => row[*index],
        Expr::Const(c) => c.to_f64(),
        Expr::Neg(x) => -eval_f64_expr(x, row),
        Expr::Add(a, b) => eval_f64_expr(a, row) + eval_f64_expr(b, row),
        Expr::Sub(a, b) => eval_f64_expr(a, row) - eval_f64_expr(b, row),
        Expr::Mul(a, b) => eval_f64_expr(a, row) * eval_f64_expr(b, row),
        Expr::Div(a, b) => eval_f64_expr(a, row) / eval_f64_expr(b, row),
        Expr::Mod(a, b) => {
            (eval_f64_expr(a, row).trunc()) % (eval_f64_expr(b, row).trunc())
        }
    }
}

// ---------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------

/// Data-parallel aggregation over the fleet: the group's members split
/// into contiguous shards at the fleet's throughput-weighted range
/// bounds (the scatter), each device folds its shard exactly as the
/// serial path would (local exec), and the partial accumulators merge
/// in fixed device order (the exchange+merge). Exact arithmetic makes
/// the split associative — BigInt decimal sums, i64 sums, and
/// comparisons are order-robust under contiguous regrouping — so the
/// result is bit-identical to [`aggregate_group`]. Non-associative
/// folds (Float64, COUNT DISTINCT) and tiny groups stay serial.
fn aggregate_group_fleet(
    ctx: &ExecCtx<'_>,
    f: AggFunc,
    vals: &[Value],
    members: &[usize],
) -> Result<Value, QueryError> {
    let Some(fleet) = ctx.fleet else {
        return aggregate_group(ctx, f, vals, members);
    };
    if fleet.len() < 2 || members.len() < fleet.len() {
        return aggregate_group(ctx, f, vals, members);
    }
    let bounds = fleet.shard_bounds(members.len());
    match (&vals[members[0]], f) {
        (Value::Decimal(first), AggFunc::Sum | AggFunc::Avg) => {
            let ty = first.dtype();
            let n = members.len() as u64;
            let out_ty = ty.sum_result(n);
            if let Some(kind) = ctx.profile.limited_kind() {
                // The capability check walks the running prefix in
                // serial member order — it guards the *serial* engine's
                // accumulator, so it must not be sharded.
                let group: Vec<UpDecimal> = members
                    .iter()
                    .map(|&i| match &vals[i] {
                        Value::Decimal(d) => d.clone(),
                        other => panic!("mixed aggregate input {other:?}"),
                    })
                    .collect();
                checked_limited_sum(kind, &group, out_ty)?;
            }
            let mut acc = up_num::BigInt::zero();
            for w in bounds.windows(2) {
                let mut part = up_num::BigInt::zero();
                for &i in &members[w[0]..w[1]] {
                    let Value::Decimal(d) = &vals[i] else {
                        panic!("mixed aggregate input {:?}", vals[i])
                    };
                    part = part.add(&d.align_up(out_ty.scale));
                }
                acc = acc.add(&part);
            }
            let mut r = UpDecimal::from_parts_unchecked(acc, out_ty);
            if f == AggFunc::Avg {
                let divisor = UpDecimal::from_parts_unchecked(
                    up_num::BigInt::from(n),
                    DecimalType::avg_divisor(n),
                );
                r = r.div(&divisor)?;
            }
            Ok(Value::Decimal(r))
        }
        (Value::Decimal(_), AggFunc::Min | AggFunc::Max) => {
            // Per-shard extremum, then the same fold over the partials
            // in device order. `min_by`/`max_by` keep the *last* tied
            // element, which the two-level fold preserves.
            let mut partials: Vec<UpDecimal> = Vec::with_capacity(fleet.len());
            for w in bounds.windows(2) {
                let shard = members[w[0]..w[1]].iter().map(|&i| match &vals[i] {
                    Value::Decimal(d) => d,
                    other => panic!("mixed aggregate input {other:?}"),
                });
                let ext = if f == AggFunc::Min {
                    shard.min_by(|a, b| a.cmp_value(b))
                } else {
                    shard.max_by(|a, b| a.cmp_value(b))
                };
                partials.push(ext.expect("non-empty shard").clone());
            }
            let v = if f == AggFunc::Min {
                partials.iter().min_by(|a, b| a.cmp_value(b))
            } else {
                partials.iter().max_by(|a, b| a.cmp_value(b))
            };
            Ok(Value::Decimal(v.expect("non-empty").clone()))
        }
        (Value::Int64(_), AggFunc::Sum) => {
            let mut total = 0i64;
            for w in bounds.windows(2) {
                let part: i64 = members[w[0]..w[1]]
                    .iter()
                    .map(|&i| match vals[i] {
                        Value::Int64(v) => v,
                        _ => panic!("mixed aggregate input"),
                    })
                    .sum();
                total += part;
            }
            Ok(Value::Int64(total))
        }
        (Value::Int64(_), AggFunc::Min | AggFunc::Max) => {
            let mut partials: Vec<i64> = Vec::with_capacity(fleet.len());
            for w in bounds.windows(2) {
                let shard = members[w[0]..w[1]].iter().map(|&i| match vals[i] {
                    Value::Int64(v) => v,
                    _ => panic!("mixed aggregate input"),
                });
                partials.push(if f == AggFunc::Min {
                    shard.min().expect("non-empty shard")
                } else {
                    shard.max().expect("non-empty shard")
                });
            }
            Ok(Value::Int64(if f == AggFunc::Min {
                *partials.iter().min().expect("non-empty")
            } else {
                *partials.iter().max().expect("non-empty")
            }))
        }
        // f64 folds are not associative and COUNT (DISTINCT) needs the
        // whole group anyway — serial path, still bit-identical.
        _ => aggregate_group(ctx, f, vals, members),
    }
}

fn aggregate_group(
    ctx: &ExecCtx<'_>,
    f: AggFunc,
    vals: &[Value],
    members: &[usize],
) -> Result<Value, QueryError> {
    if members.is_empty() {
        return Ok(match f {
            AggFunc::Count | AggFunc::CountDistinct => Value::Int64(0),
            _ => Value::Null,
        });
    }
    if f == AggFunc::Count {
        return Ok(Value::Int64(members.len() as i64));
    }
    if f == AggFunc::CountDistinct {
        let mut seen = std::collections::HashSet::new();
        for &i in members {
            seen.insert(vals[i].render());
        }
        return Ok(Value::Int64(seen.len() as i64));
    }
    // Homogeneous value kinds per column.
    match &vals[members[0]] {
        Value::Decimal(first) => {
            let ty = first.dtype();
            let group: Vec<UpDecimal> = members
                .iter()
                .map(|&i| match &vals[i] {
                    Value::Decimal(d) => d.clone(),
                    other => panic!("mixed aggregate input {other:?}"),
                })
                .collect();
            let n = group.len() as u64;
            let v = match f {
                AggFunc::Sum | AggFunc::Avg => {
                    let out_ty = ty.sum_result(n);
                    if let Some(kind) = ctx.profile.limited_kind() {
                        // Value-based capability: the running accumulator
                        // must fit the engine's word width (the *type* may
                        // exceed the declared cap — real sums often fit).
                        checked_limited_sum(kind, &group, out_ty)?;
                    }
                    let mut acc = up_num::BigInt::zero();
                    for v in &group {
                        acc = acc.add(&v.align_up(out_ty.scale));
                    }
                    let mut r = UpDecimal::from_parts_unchecked(acc, out_ty);
                    if f == AggFunc::Avg {
                        let divisor = UpDecimal::from_parts_unchecked(
                            up_num::BigInt::from(n),
                            DecimalType::avg_divisor(n),
                        );
                        r = r.div(&divisor)?;
                    }
                    r
                }
                AggFunc::Min => group
                    .iter()
                    .min_by(|a, b| a.cmp_value(b))
                    .expect("non-empty")
                    .clone(),
                AggFunc::Max => group
                    .iter()
                    .max_by(|a, b| a.cmp_value(b))
                    .expect("non-empty")
                    .clone(),
                AggFunc::Count | AggFunc::CountDistinct => unreachable!(),
            };
            Ok(Value::Decimal(v))
        }
        Value::Int64(_) => {
            let nums: Vec<i64> = members
                .iter()
                .map(|&i| match vals[i] {
                    Value::Int64(v) => v,
                    _ => panic!("mixed aggregate input"),
                })
                .collect();
            Ok(match f {
                AggFunc::Sum => Value::Int64(nums.iter().sum()),
                AggFunc::Avg => Value::Float64(nums.iter().sum::<i64>() as f64 / nums.len() as f64),
                AggFunc::Min => Value::Int64(*nums.iter().min().expect("non-empty")),
                AggFunc::Max => Value::Int64(*nums.iter().max().expect("non-empty")),
                AggFunc::Count | AggFunc::CountDistinct => unreachable!(),
            })
        }
        Value::Float64(_) => {
            let nums: Vec<f64> = members
                .iter()
                .map(|&i| match vals[i] {
                    Value::Float64(v) => v,
                    _ => panic!("mixed aggregate input"),
                })
                .collect();
            Ok(match f {
                AggFunc::Sum => Value::Float64(nums.iter().sum()),
                AggFunc::Avg => Value::Float64(nums.iter().sum::<f64>() / nums.len() as f64),
                AggFunc::Min => {
                    Value::Float64(nums.iter().copied().fold(f64::INFINITY, f64::min))
                }
                AggFunc::Max => {
                    Value::Float64(nums.iter().copied().fold(f64::NEG_INFINITY, f64::max))
                }
                AggFunc::Count | AggFunc::CountDistinct => unreachable!(),
            })
        }
        other => Err(QueryError::Unsupported(format!("aggregate over {other:?}"))),
    }
}

/// Verifies a limited engine can hold the running sum: every aligned
/// addend and the accumulator must fit the engine's magnitude limit.
fn checked_limited_sum(
    kind: up_baselines::LimitedKind,
    group: &[UpDecimal],
    out_ty: DecimalType,
) -> Result<(), QueryError> {
    let engine = LimitedEngine::new(kind);
    let mut acc: i128 = 0;
    for v in group {
        let aligned = UpDecimal::from_parts_unchecked(v.align_up(out_ty.scale), out_ty);
        let imported = engine
            .import_unchecked_type(&aligned)
            .map_err(QueryError::Capability)?;
        acc = acc
            .checked_add(imported.unscaled)
            .ok_or(QueryError::Capability(CapError::Overflow { engine: kind.name() }))?;
        engine
            .check_value(acc)
            .map_err(QueryError::Capability)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_matching_covers_tpch_patterns() {
        assert!(like_match("PROMO PLATED STEEL", "PROMO%"));
        assert!(!like_match("ECONOMY ANODIZED STEEL", "PROMO%"));
        assert!(like_match("forest green part7", "forest%"));
        assert!(like_match("dark green metallic", "%green%"));
        assert!(!like_match("dark blue metallic", "%green%"));
        assert!(like_match("MED BOX", "MED BOX")); // exact
        assert!(like_match("abcxyzdef", "abc%def"));
        assert!(!like_match("abcxyzde", "abc%def"));
        assert!(like_match("xx-mid-yy", "%mid%"));
        assert!(like_match("a", "%"));
    }

    #[test]
    fn value_comparison_coerces_numerics() {
        use core::cmp::Ordering::*;
        let d = |s: &str| {
            Value::Decimal(UpDecimal::parse(s, DecimalType::new_unchecked(10, 2)).unwrap())
        };
        assert_eq!(cmp_values(&d("1.50"), &Value::Int64(2)), Less);
        assert_eq!(cmp_values(&Value::Int64(2), &d("1.50")), Greater);
        assert_eq!(cmp_values(&d("2.00"), &Value::Int64(2)), Equal);
        assert_eq!(cmp_values(&Value::Float64(1.5), &Value::Int64(1)), Greater);
        assert_eq!(cmp_values(&d("0.25"), &Value::Float64(0.25)), Equal);
        assert_eq!(cmp_values(&Value::Str("1994-01-01".into()), &Value::Str("1995-01-01".into())), Less);
        // NULL sorts first and equals itself.
        assert_eq!(cmp_values(&Value::Null, &Value::Null), Equal);
        assert_eq!(cmp_values(&Value::Null, &d("0.00")), Less);
    }

    #[test]
    fn value_arithmetic_keeps_decimal_exactness() {
        let d = |s: &str| {
            Value::Decimal(UpDecimal::parse(s, DecimalType::new_unchecked(12, 2)).unwrap())
        };
        let r = value_arith(BinOp::Mul, d("0.10"), d("0.10")).unwrap();
        let Value::Decimal(v) = r else { panic!() };
        assert_eq!(v.to_string(), "0.0100"); // exact, scale 4
        // Decimal ÷ int literal keeps decimal semantics (the Q17 shape).
        let r = value_arith(BinOp::Div, d("10.00"), Value::Int64(7)).unwrap();
        let Value::Decimal(v) = r else { panic!() };
        assert_eq!(v.to_string(), "1.428571"); // scale 2+4, truncated
        // NULL propagates; zero divisors error.
        assert!(matches!(value_arith(BinOp::Add, Value::Null, d("1.00")), Ok(Value::Null)));
        assert!(value_arith(BinOp::Div, d("1.00"), Value::Int64(0)).is_err());
        // Int % int.
        assert!(matches!(
            value_arith(BinOp::Mod, Value::Int64(17), Value::Int64(5)),
            Ok(Value::Int64(2))
        ));
    }

    #[test]
    fn cast_value_handles_every_source_kind() {
        let ty = DecimalType::new_unchecked(8, 3);
        let Value::Decimal(v) = cast_value(Value::Int64(42), ty).unwrap() else { panic!() };
        assert_eq!(v.to_string(), "42.000");
        let Value::Decimal(v) = cast_value(Value::Float64(1.25), ty).unwrap() else { panic!() };
        assert_eq!(v.to_string(), "1.250");
        let src = UpDecimal::parse("7.7777", DecimalType::new_unchecked(8, 4)).unwrap();
        let Value::Decimal(v) = cast_value(Value::Decimal(src), ty).unwrap() else { panic!() };
        assert_eq!(v.to_string(), "7.778"); // half away from zero
        assert!(matches!(cast_value(Value::Null, ty), Ok(Value::Null)));
        assert!(cast_value(Value::Str("x".into()), ty).is_err());
        // Overflow rejected.
        assert!(cast_value(Value::Int64(999_999), ty).is_err());
    }

    #[test]
    fn modeled_time_totals_and_adds() {
        let mut a = ModeledTime {
            scan_s: 1.0,
            pcie_s: 2.0,
            compile_s: 3.0,
            kernel_s: 4.0,
            cpu_s: 5.0,
            queue_s: 0.0,
        };
        assert_eq!(a.total(), 15.0);
        let b = ModeledTime { scan_s: 0.5, ..Default::default() };
        a.add(&b);
        assert_eq!(a.scan_s, 1.5);
        assert_eq!(a.total(), 15.5);
    }

    #[test]
    fn width_factor_is_sublinear_and_normalized() {
        assert_eq!(width_factor(18), 1.0);
        assert_eq!(width_factor(9), 1.0); // clamped at 1 below LEN 2
        let w76 = width_factor(76);
        let w307 = width_factor(307);
        assert!(w76 > 1.5 && w76 < 76.0 / 18.0, "{w76}");
        assert!(w307 > w76);
        assert!(w307 < 307.0 / 18.0, "sublinear: {w307}");
    }
}
