//! Execution profiles — the systems of the evaluation, selectable per
//! database instance.
//!
//! A profile decides three things: which arithmetic backend evaluates
//! DECIMAL expressions (JIT+GPU kernels, thread groups, base-10⁴ CPU
//! numeric with a division policy, capped fixed-width integers, or plain
//! doubles), which capability envelope applies (Table II), and which
//! whole-system cost constants model the parts of the comparator database
//! that sit around the arithmetic (§IV's measurement methodology: disk
//! I/O included except MonetDB; PCIe included for GPU systems).

use up_baselines::registry::{cost_for, SystemCost};
use up_baselines::{DivProfile, LimitedKind};

/// An execution profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// This work: JIT-compiled kernels on the (simulated) GPU, compact
    /// representation, all §III-D optimizations.
    UltraPrecise,
    /// RateupDB-like: GPU but operator-at-a-time (no JIT — one kernel and
    /// one materialized intermediate per operator), the §III-B1
    /// alternative representation, max precision 36.
    RateupLike,
    /// HEAVY.AI-like: GPU, one 64-bit word per decimal, max precision 18,
    /// no decimal modulo.
    HeavyAiLike,
    /// MonetDB-like: vectorized in-memory CPU engine, i128 decimals, max
    /// precision 38; measured times exclude disk I/O.
    MonetLike,
    /// PostgreSQL-like: base-10⁴ CPU numeric, `select_div_scale`.
    PostgresLike,
    /// H2-like: base-10⁴ CPU numeric, +20 digits per division.
    H2Like,
    /// CockroachDB-like: base-10⁴ CPU numeric, 20-significant-digit
    /// division context.
    CockroachLike,
    /// DOUBLE everywhere — fast and inexact (Fig. 1).
    DoubleF64,
}

impl Profile {
    /// Display/registry name.
    pub fn name(&self) -> &'static str {
        match self {
            Profile::UltraPrecise => "UltraPrecise",
            Profile::RateupLike => "RateupDB",
            Profile::HeavyAiLike => "HEAVY.AI",
            Profile::MonetLike => "MonetDB",
            Profile::PostgresLike => "PostgreSQL",
            Profile::H2Like => "H2",
            Profile::CockroachLike => "CockroachDB",
            Profile::DoubleF64 => "DOUBLE",
        }
    }

    /// Whole-system cost constants (DOUBLE reuses its host system's).
    pub fn system_cost(&self) -> &'static SystemCost {
        let name = match self {
            Profile::DoubleF64 => "PostgreSQL",
            other => other.name(),
        };
        cost_for(name).expect("registry covers every profile")
    }

    /// Division-scale policy for the base-10⁴ CPU backends.
    pub fn div_profile(&self) -> Option<DivProfile> {
        match self {
            Profile::PostgresLike => Some(DivProfile::Postgres),
            Profile::H2Like => Some(DivProfile::H2),
            Profile::CockroachLike => Some(DivProfile::Cockroach),
            _ => None,
        }
    }

    /// Fixed-width backend kind, when this profile is capped.
    pub fn limited_kind(&self) -> Option<LimitedKind> {
        match self {
            Profile::RateupLike => Some(LimitedKind::Rateup5x32),
            Profile::HeavyAiLike => Some(LimitedKind::HeavyAi64),
            Profile::MonetLike => Some(LimitedKind::MonetDb128),
            _ => None,
        }
    }

    /// Whether the profile executes on the (simulated) GPU — its modeled
    /// times then include PCIe transfer (§IV).
    pub fn is_gpu(&self) -> bool {
        matches!(self, Profile::UltraPrecise | Profile::RateupLike | Profile::HeavyAiLike)
    }

    /// Whether DECIMAL expressions go through the JIT + generated-kernel
    /// path (only this work does).
    pub fn uses_jit(&self) -> bool {
        matches!(self, Profile::UltraPrecise)
    }

    /// All profiles, for sweep harnesses.
    pub const ALL: [Profile; 8] = [
        Profile::UltraPrecise,
        Profile::RateupLike,
        Profile::HeavyAiLike,
        Profile::MonetLike,
        Profile::PostgresLike,
        Profile::H2Like,
        Profile::CockroachLike,
        Profile::DoubleF64,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_profile_has_cost_constants() {
        for p in Profile::ALL {
            let c = p.system_cost();
            assert!(c.per_tuple_ns >= 0.0, "{}", p.name());
        }
    }

    #[test]
    fn classification() {
        assert!(Profile::UltraPrecise.is_gpu() && Profile::UltraPrecise.uses_jit());
        assert!(Profile::RateupLike.is_gpu() && !Profile::RateupLike.uses_jit());
        assert!(!Profile::PostgresLike.is_gpu());
        assert_eq!(Profile::MonetLike.limited_kind(), Some(LimitedKind::MonetDb128));
        assert_eq!(Profile::H2Like.div_profile(), Some(DivProfile::H2));
        assert!(!Profile::MonetLike.system_cost().includes_disk_scan);
    }
}
