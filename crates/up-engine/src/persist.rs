//! Table persistence: a compact binary on-disk format.
//!
//! The evaluation includes disk I/O for the on-disk systems (§IV), and
//! the compact byte-aligned decimal representation exists precisely
//! because "the fixed-point decimals are stored in more compact
//! byte-aligned arrays before being read to the processors" (§III-B) —
//! on disk as well as in memory. This module serializes tables with
//! decimal columns stored exactly in that compact form, so a saved table
//! is byte-for-byte the buffer a kernel would consume.
//!
//! Format (little-endian):
//! ```text
//! magic "UPTB" | version u32 | name len+bytes | column count u32 | rows u64
//! per column: name len+bytes | tag u8 | (decimal: p u32, s u32) | payload
//!   payload decimal: raw compact bytes (rows · Lb)
//!   payload i64/f64: raw 8-byte values
//!   payload str: per value len u32 + bytes
//! ```

use crate::storage::{ColumnData, ColumnDef, ColumnType, Schema, Table};
use std::io::{self, Read, Write};
use up_num::DecimalType;

const MAGIC: &[u8; 4] = b"UPTB";
const VERSION: u32 = 1;

/// Serialization failures.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O.
    Io(io::Error),
    /// Structural problem in the input bytes.
    Corrupt(String),
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl core::fmt::Display for PersistError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io: {e}"),
            PersistError::Corrupt(m) => write!(f, "corrupt table file: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

fn put_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    w.write_all(&(s.len() as u32).to_le_bytes())?;
    w.write_all(s.as_bytes())
}

fn get_str(r: &mut impl Read) -> Result<String, PersistError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > 1 << 24 {
        return Err(PersistError::Corrupt("string length too large".into()));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| PersistError::Corrupt("non-UTF-8 string".into()))
}

/// Writes a table.
pub fn save(table: &Table, w: &mut impl Write) -> Result<(), PersistError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    put_str(w, &table.name)?;
    w.write_all(&(table.columns.len() as u32).to_le_bytes())?;
    w.write_all(&(table.rows as u64).to_le_bytes())?;
    for (def, col) in table.schema.columns.iter().zip(&table.columns) {
        put_str(w, &def.name)?;
        match col {
            ColumnData::Decimal { ty, bytes } => {
                w.write_all(&[0u8])?;
                w.write_all(&ty.precision.to_le_bytes())?;
                w.write_all(&ty.scale.to_le_bytes())?;
                w.write_all(bytes)?;
            }
            ColumnData::Int64(v) => {
                w.write_all(&[1u8])?;
                for x in v {
                    w.write_all(&x.to_le_bytes())?;
                }
            }
            ColumnData::Float64(v) => {
                w.write_all(&[2u8])?;
                for x in v {
                    w.write_all(&x.to_le_bytes())?;
                }
            }
            ColumnData::Str(v) => {
                w.write_all(&[3u8])?;
                for s in v {
                    put_str(w, s)?;
                }
            }
        }
    }
    Ok(())
}

/// Reads a table back.
pub fn load(r: &mut impl Read) -> Result<Table, PersistError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::Corrupt("bad magic".into()));
    }
    let mut v4 = [0u8; 4];
    r.read_exact(&mut v4)?;
    let version = u32::from_le_bytes(v4);
    if version != VERSION {
        return Err(PersistError::Corrupt(format!("unsupported version {version}")));
    }
    let name = get_str(r)?;
    r.read_exact(&mut v4)?;
    let n_cols = u32::from_le_bytes(v4) as usize;
    let mut v8 = [0u8; 8];
    r.read_exact(&mut v8)?;
    let rows = u64::from_le_bytes(v8) as usize;
    if n_cols > 4096 {
        return Err(PersistError::Corrupt("implausible column count".into()));
    }

    let mut defs = Vec::with_capacity(n_cols);
    let mut cols = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        let col_name = get_str(r)?;
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        match tag[0] {
            0 => {
                r.read_exact(&mut v4)?;
                let p = u32::from_le_bytes(v4);
                r.read_exact(&mut v4)?;
                let s = u32::from_le_bytes(v4);
                let ty = DecimalType::new(p, s)
                    .map_err(|e| PersistError::Corrupt(format!("bad type: {e}")))?;
                let mut bytes = vec![0u8; rows * ty.lb()];
                r.read_exact(&mut bytes)?;
                defs.push(ColumnDef { name: col_name, ty: ColumnType::Decimal(ty) });
                cols.push(ColumnData::Decimal { ty, bytes });
            }
            1 => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    r.read_exact(&mut v8)?;
                    v.push(i64::from_le_bytes(v8));
                }
                defs.push(ColumnDef { name: col_name, ty: ColumnType::Int64 });
                cols.push(ColumnData::Int64(v));
            }
            2 => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    r.read_exact(&mut v8)?;
                    v.push(f64::from_le_bytes(v8));
                }
                defs.push(ColumnDef { name: col_name, ty: ColumnType::Float64 });
                cols.push(ColumnData::Float64(v));
            }
            3 => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(get_str(r)?);
                }
                defs.push(ColumnDef { name: col_name, ty: ColumnType::Str });
                cols.push(ColumnData::Str(v));
            }
            t => return Err(PersistError::Corrupt(format!("unknown column tag {t}"))),
        }
    }
    Ok(Table { name, schema: Schema { columns: defs }, columns: cols, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::Value;
    use up_num::UpDecimal;

    fn sample_table() -> Table {
        let ty = DecimalType::new_unchecked(20, 4);
        let mut t = Table::new(
            "mix",
            Schema::new(vec![
                ("d", ColumnType::Decimal(ty)),
                ("n", ColumnType::Int64),
                ("f", ColumnType::Float64),
                ("s", ColumnType::Str),
            ]),
        );
        for i in 0..50i64 {
            t.push_row(vec![
                Value::Decimal(
                    UpDecimal::from_scaled_i64(i * 123_456_789 - 999, ty).expect("fits"),
                ),
                Value::Int64(i * 7),
                Value::Float64(i as f64 * 0.5),
                Value::Str(format!("row-{i}")),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample_table();
        let mut buf = Vec::new();
        save(&t, &mut buf).unwrap();
        let back = load(&mut buf.as_slice()).unwrap();
        assert_eq!(back.name, t.name);
        assert_eq!(back.rows, t.rows);
        assert_eq!(back.schema.columns.len(), 4);
        for i in 0..t.rows {
            assert_eq!(
                back.columns[0].get_decimal(i),
                t.columns[0].get_decimal(i),
                "decimal row {i}"
            );
        }
        let (ColumnData::Str(a), ColumnData::Str(b)) = (&back.columns[3], &t.columns[3]) else {
            panic!()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn decimal_payload_is_the_compact_bytes() {
        // The on-disk decimal payload is bit-identical to the in-memory
        // compact buffer — the kernel-ready format (§III-B).
        let t = sample_table();
        let mut buf = Vec::new();
        save(&t, &mut buf).unwrap();
        let (bytes, ty) = t.columns[0].decimal_bytes();
        let payload_start = buf
            .windows(bytes.len().min(64))
            .position(|w| w == &bytes[..bytes.len().min(64)])
            .expect("compact bytes embedded verbatim");
        assert!(payload_start > 0);
        let _ = ty;
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        assert!(matches!(
            load(&mut &b"NOPE"[..]),
            Err(PersistError::Corrupt(_)) | Err(PersistError::Io(_))
        ));
        let t = sample_table();
        let mut buf = Vec::new();
        save(&t, &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(load(&mut buf.as_slice()), Err(PersistError::Corrupt(_))));
        // Truncated file.
        let t2 = load(&mut &buf[..20]);
        assert!(t2.is_err());
    }
}
