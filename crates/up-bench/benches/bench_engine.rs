//! Criterion benchmarks of end-to-end SQL execution across execution
//! profiles (functional path, small relations): projection, aggregation,
//! and TPC-H Q1.

use core::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use up_engine::{ColumnType, Database, Profile, Schema, Value};
use up_num::DecimalType;
use up_workloads::{datagen, tpch};

fn build_db(profile: Profile, n: usize, p: u32) -> Database {
    let ty = DecimalType::new_unchecked(p, 2);
    let mut db = Database::new(profile);
    db.create_table(
        "r",
        Schema::new(vec![
            ("c1", ColumnType::Decimal(ty)),
            ("c2", ColumnType::Decimal(ty)),
        ]),
    );
    let a = datagen::random_decimal_column(n, ty, 2, true, 10);
    let b = datagen::random_decimal_column(n, ty, 2, true, 11);
    for i in 0..n {
        db.insert("r", vec![Value::Decimal(a[i].clone()), Value::Decimal(b[i].clone())])
            .expect("insert");
    }
    db
}

fn bench_projection(c: &mut Criterion) {
    let n = 1024;
    let mut g = c.benchmark_group("engine/projection_c1_plus_c2");
    g.throughput(Throughput::Elements(n as u64));
    for profile in [Profile::UltraPrecise, Profile::PostgresLike, Profile::MonetLike] {
        let db = build_db(profile, n, 30);
        // Warm the kernel cache so the bench isolates execution.
        db.query("SELECT c1 + c2 FROM r").expect("warm");
        g.bench_with_input(
            BenchmarkId::from_parameter(profile.name()),
            &profile,
            |bench, _| bench.iter(|| db.query("SELECT c1 + c2 FROM r").expect("query")),
        );
    }
    g.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let n = 2048;
    let mut g = c.benchmark_group("engine/sum_c1");
    g.throughput(Throughput::Elements(n as u64));
    for profile in [Profile::UltraPrecise, Profile::PostgresLike] {
        let db = build_db(profile, n, 29);
        g.bench_with_input(
            BenchmarkId::from_parameter(profile.name()),
            &profile,
            |bench, _| bench.iter(|| db.query("SELECT SUM(c1) FROM r").expect("query")),
        );
    }
    g.finish();
}

fn bench_tpch_q1(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/tpch_q1");
    g.sample_size(10);
    for profile in [Profile::UltraPrecise, Profile::PostgresLike] {
        let mut db = Database::new(profile);
        tpch::load(
            &mut db,
            tpch::TpchConfig { lineitem_rows: 1000, seed: 5, extended_precision: None },
        );
        db.query(tpch::q1_sql()).expect("warm");
        g.bench_with_input(
            BenchmarkId::from_parameter(profile.name()),
            &profile,
            |bench, _| bench.iter(|| db.query(tpch::q1_sql()).expect("query")),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    targets = bench_projection, bench_aggregation, bench_tpch_q1
}
criterion_main!(benches);
