//! Criterion micro-benchmarks of the limb primitives: the carry-chain
//! addition, school-book/Karatsuba multiplication, and the five division
//! algorithms, across the evaluation's word lengths.

use core::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use up_num::{div, limbs, mul};

fn limb_vec(n: usize, seed: u64) -> Vec<u32> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 16) as u32 | 1
        })
        .collect()
}

fn bench_add(c: &mut Criterion) {
    let mut g = c.benchmark_group("limbs/add");
    for &len in &[2usize, 4, 8, 16, 32] {
        let a = limb_vec(len, 0xA);
        let b = limb_vec(len, 0xB);
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |bench, _| {
            bench.iter(|| limbs::add(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
    }
    g.finish();
}

fn bench_mul(c: &mut Criterion) {
    let mut g = c.benchmark_group("limbs/mul_schoolbook");
    for &len in &[2usize, 4, 8, 16, 32] {
        let a = limb_vec(len, 0xC);
        let b = limb_vec(len, 0xD);
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |bench, _| {
            bench.iter(|| mul::mul_schoolbook(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
    }
    g.finish();

    // The paper's observation: Karatsuba loses below its threshold.
    let mut g = c.benchmark_group("limbs/mul_karatsuba_vs_schoolbook");
    for &len in &[32usize, 64, 128] {
        let a = limb_vec(len, 0xE);
        let b = limb_vec(len, 0xF);
        g.bench_with_input(BenchmarkId::new("schoolbook", len), &len, |bench, _| {
            bench.iter(|| mul::mul_schoolbook(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("karatsuba", len), &len, |bench, _| {
            bench.iter(|| mul::mul_karatsuba(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
    }
    g.finish();
}

fn bench_div(c: &mut Criterion) {
    let mut g = c.benchmark_group("limbs/div");
    for &len in &[4usize, 8, 16, 32] {
        let a = limb_vec(len, 0x11);
        let b = limb_vec(len / 2, 0x22);
        g.bench_with_input(BenchmarkId::new("knuth", len), &len, |bench, _| {
            bench.iter(|| div::div_rem_knuth(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("binary_search", len), &len, |bench, _| {
            bench.iter(|| {
                div::div_rem_binary_search(std::hint::black_box(&a), std::hint::black_box(&b))
            })
        });
        g.bench_with_input(BenchmarkId::new("newton", len), &len, |bench, _| {
            bench.iter(|| div::div_rem_newton(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("goldschmidt", len), &len, |bench, _| {
            bench.iter(|| {
                div::div_rem_goldschmidt(std::hint::black_box(&a), std::hint::black_box(&b))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    targets = bench_add, bench_mul, bench_div
}
criterion_main!(benches);
