//! Criterion benchmarks of the simulated-GPU kernel path: JIT compile
//! latency (IR build) and functional launches of generated add/mul
//! kernels across LEN, plus the cooperative-group arithmetic.

use core::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use up_gpusim::cgbn::{group_eval, GroupOp, Tpi};
use up_gpusim::{launch, DeviceConfig, GlobalMem, LaunchConfig};
use up_jit::cache::{Compiled, JitEngine};
use up_jit::Expr;
use up_num::{encode_compact, DecimalType};
use up_workloads::datagen;

fn bench_jit_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/jit_ir_build");
    for &p in &[18u32, 76, 307] {
        let ty = DecimalType::new_unchecked(p - 2, 2);
        let e = Expr::col(0, ty, "a")
            .add(Expr::col(1, ty, "b"))
            .add(Expr::col(2, ty, "c"));
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |bench, _| {
            bench.iter(|| {
                let jit = JitEngine::with_defaults();
                std::hint::black_box(jit.compile(std::hint::black_box(&e)))
            })
        });
    }
    g.finish();
}

fn bench_kernel_launch(c: &mut Criterion) {
    let device = DeviceConfig::tiny();
    let n = 2048usize;
    for (make, name) in [
        (false, "add"),
        (true, "mul"),
    ] {
        let mut g = c.benchmark_group(format!("kernels/sim_launch_{name}"));
        g.throughput(Throughput::Elements(n as u64));
        for &len in &[2usize, 4, 8] {
            let p = up_num::max_precision_for_lw(len);
            let col_p = if make { (p / 2).max(5) } else { p - 1 };
            let ty = DecimalType::new_unchecked(col_p, 2);
            let a = Expr::col(0, ty, "a");
            let b = Expr::col(1, ty, "b");
            let e = if make { a.mul(b) } else { a.add(b) };
            let jit = JitEngine::with_defaults();
            let (Compiled::Kernel(k), _) = jit.compile(&e) else { panic!("kernel") };
            let ca = datagen::random_decimal_column(n, ty, 2, true, 1);
            let cb = datagen::random_decimal_column(n, ty, 2, true, 2);
            let mut buf_a = Vec::new();
            let mut buf_b = Vec::new();
            for i in 0..n {
                buf_a.extend(encode_compact(&ca[i], ty).expect("fits"));
                buf_b.extend(encode_compact(&cb[i], ty).expect("fits"));
            }
            g.bench_with_input(BenchmarkId::from_parameter(len), &len, |bench, _| {
                bench.iter(|| {
                    let mut mem = GlobalMem::new();
                    mem.add_buffer(buf_a.clone());
                    mem.add_buffer(buf_b.clone());
                    mem.alloc(n * k.out_ty.lb());
                    let cfg = LaunchConfig::for_tuples(n as u64, 128, &device);
                    launch(&k.kernel, cfg, &device, &mut mem, &[n as u32]).expect("launch")
                })
            });
        }
        g.finish();
    }
}

fn bench_group_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/cgbn_group_eval");
    let ty = DecimalType::new_unchecked(153, 10);
    let a = datagen::random_decimal_column(1, ty, 2, true, 3).pop().expect("one");
    let b = datagen::random_decimal_column(1, ty, 3, true, 4).pop().expect("one");
    for &tpi in &[1u32, 8, 32] {
        g.bench_with_input(BenchmarkId::new("mul", tpi), &tpi, |bench, &tpi| {
            bench.iter(|| {
                group_eval(
                    GroupOp::Mul,
                    std::hint::black_box(&a),
                    std::hint::black_box(&b),
                    Tpi(tpi),
                )
                .expect("supported")
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    targets = bench_jit_build, bench_kernel_launch, bench_group_ops
}
criterion_main!(benches);
