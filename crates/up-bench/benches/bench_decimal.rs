//! Criterion benchmarks of the fixed-point value layer: UltraPrecise's
//! `UpDecimal` against the PostgreSQL-style base-10⁴ `SoftDecimal` on the
//! same operations, plus the compact representation round trip (the
//! §III-B expand/compact steps every kernel performs).

use core::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use up_baselines::{DivProfile, SoftDecimal};
use up_num::{decode_compact, encode_compact, DecimalType, UpDecimal};
use up_workloads::datagen;

fn pairs(p: u32, s: u32, n: usize) -> Vec<(UpDecimal, UpDecimal)> {
    let ty = DecimalType::new_unchecked(p, s);
    let a = datagen::random_decimal_column(n, ty, 2, true, 1);
    let b = datagen::random_decimal_column(n, ty, 3, true, 2);
    a.into_iter().zip(b).collect()
}

fn bench_updecimal_vs_soft(c: &mut Criterion) {
    for (op, name) in [(0u8, "add"), (1, "mul"), (2, "div")] {
        let mut g = c.benchmark_group(format!("decimal/{name}"));
        for &p in &[18u32, 38, 76, 153] {
            let data = pairs(p, p / 4, 64);
            let soft: Vec<(SoftDecimal, SoftDecimal)> = data
                .iter()
                .map(|(a, b)| {
                    (
                        SoftDecimal::parse(&a.to_string()).expect("parses"),
                        SoftDecimal::parse(&b.to_string()).expect("parses"),
                    )
                })
                .collect();
            g.bench_with_input(BenchmarkId::new("up_num", p), &p, |bench, _| {
                bench.iter(|| {
                    for (a, b) in &data {
                        let _ = std::hint::black_box(match op {
                            0 => a.add(b),
                            1 => a.mul(b),
                            _ => a.div(b).expect("nonzero divisor"),
                        });
                    }
                })
            });
            g.bench_with_input(BenchmarkId::new("pg_base10000", p), &p, |bench, _| {
                bench.iter(|| {
                    for (a, b) in &soft {
                        let _ = std::hint::black_box(match op {
                            0 => a.add(b),
                            1 => a.mul(b),
                            _ => a.div(b, DivProfile::Postgres).expect("nonzero divisor"),
                        });
                    }
                })
            });
        }
        g.finish();
    }
}

fn bench_compact(c: &mut Criterion) {
    let mut g = c.benchmark_group("decimal/compact_roundtrip");
    for &p in &[18u32, 38, 76, 153, 307] {
        let ty = DecimalType::new_unchecked(p, 2);
        let vals = datagen::random_decimal_column(64, ty, 2, true, 7);
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |bench, _| {
            bench.iter(|| {
                for v in &vals {
                    let bytes = encode_compact(std::hint::black_box(v), ty).expect("fits");
                    let _ = std::hint::black_box(decode_compact(&bytes, ty));
                }
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    targets = bench_updecimal_vs_soft, bench_compact
}
criterion_main!(benches);
