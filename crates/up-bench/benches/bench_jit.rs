//! Criterion benchmarks of the §III-D expression rewrites: n-ary
//! conversion, alignment scheduling, constant folding, and the full
//! optimize→codegen pipeline (the real cost behind the modeled NVCC
//! latency).

use core::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use up_jit::cache::{JitEngine, JitOptions};
use up_jit::{constfold, nary::NExpr, schedule, Expr};
use up_num::DecimalType;

fn wide_sum(terms: usize) -> Expr {
    let a_ty = DecimalType::new_unchecked(30, 1);
    let b_ty = DecimalType::new_unchecked(17, 11);
    let mut e = Expr::col(0, a_ty, "a").add(Expr::col(1, b_ty, "b"));
    for i in 1..terms {
        e = e.add(Expr::col(0, a_ty, format!("a{i}")));
        e = e.add(Expr::lit("1.25").expect("literal"));
    }
    e
}

fn bench_passes(c: &mut Criterion) {
    let mut g = c.benchmark_group("jit/rewrite_passes");
    for &terms in &[4usize, 16, 64] {
        let e = wide_sum(terms);
        g.bench_with_input(BenchmarkId::new("to_nary", terms), &terms, |bench, _| {
            bench.iter(|| NExpr::from_expr(std::hint::black_box(&e)))
        });
        let n = NExpr::from_expr(&e);
        g.bench_with_input(BenchmarkId::new("schedule", terms), &terms, |bench, _| {
            bench.iter(|| schedule::schedule_alignment(std::hint::black_box(n.clone())))
        });
        g.bench_with_input(BenchmarkId::new("constfold", terms), &terms, |bench, _| {
            bench.iter(|| constfold::fold_constants(std::hint::black_box(n.clone())))
        });
    }
    g.finish();
}

fn bench_full_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("jit/optimize_and_codegen");
    for &terms in &[4usize, 16] {
        let e = wide_sum(terms);
        for (name, opts) in [("optimized", JitOptions::default()), ("raw", JitOptions::none())] {
            g.bench_with_input(
                BenchmarkId::new(name, terms),
                &terms,
                |bench, _| {
                    bench.iter(|| {
                        let jit = JitEngine::new(opts);
                        std::hint::black_box(jit.compile(std::hint::black_box(&e)))
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    targets = bench_passes, bench_full_compile
}
criterion_main!(benches);
