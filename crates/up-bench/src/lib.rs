//! Shared infrastructure for the figure/table harnesses.
//!
//! Every binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation section: it runs the workload at a simulation-friendly
//! tuple count, scales the linear components of the modeled time to the
//! paper's 10-million-tuple relations, and prints the same rows/series
//! the paper reports (absolute numbers differ — the substrate is a
//! simulator — but the winners, factors, and crossovers should hold; see
//! EXPERIMENTS.md).

use up_engine::ModeledTime;

/// Tuples in the paper's relations ("10 million tuples unless otherwise
/// specified", §IV).
pub const PAPER_TUPLES: u64 = 10_000_000;

/// Harness options parsed from the command line.
#[derive(Clone, Copy, Debug)]
pub struct HarnessOpts {
    /// Tuples to actually simulate.
    pub sim_tuples: usize,
    /// Tuples to report at (modeled scaling target).
    pub report_tuples: u64,
    /// Quick mode (CI-friendly sizes).
    pub quick: bool,
}

impl HarnessOpts {
    /// Parses `--quick` and `--tuples N` from `std::env::args`.
    pub fn from_args(default_sim: usize) -> HarnessOpts {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick");
        let mut sim = if quick { default_sim / 10 } else { default_sim };
        if let Some(i) = args.iter().position(|a| a == "--tuples") {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                sim = v;
            }
        }
        HarnessOpts {
            sim_tuples: sim.max(64),
            report_tuples: PAPER_TUPLES,
            quick,
        }
    }

    /// Linear scaling factor from simulated to reported size.
    pub fn scale(&self) -> f64 {
        self.report_tuples as f64 / self.sim_tuples as f64
    }
}

/// Scales the tuple-linear components of a modeled time (scan, PCIe,
/// kernel, CPU) while keeping compile time constant — compilation does
/// not depend on the data volume (§IV-D1).
pub fn scale_modeled(m: &ModeledTime, factor: f64) -> ModeledTime {
    ModeledTime {
        scan_s: m.scan_s * factor,
        pcie_s: m.pcie_s * factor,
        compile_s: m.compile_s,
        kernel_s: m.kernel_s * factor,
        cpu_s: m.cpu_s * factor,
        queue_s: m.queue_s * factor,
    }
}

/// Formats seconds the way the paper mixes units (ms below 10 s).
pub fn fmt_time(s: f64) -> String {
    if !s.is_finite() {
        "-".to_string()
    } else if s < 0.001 {
        format!("{:.1} µs", s * 1e6)
    } else if s < 10.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.2} s", s)
    }
}

/// Formats a "failed/unsupported" cell.
pub fn fmt_fail(reason: &str) -> String {
    format!("✗ ({reason})")
}

/// Prints a row of fixed-width cells.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{:>width$}  ", c, width = w));
    }
    println!("{}", line.trim_end());
}

/// Prints a left-aligned header row plus a rule.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{:>width$}  ", c, width = w));
    }
    let line = line.trim_end().to_string();
    println!("{line}");
    println!("{}", "-".repeat(line.chars().count()));
}

/// The evaluation's LEN series and the result precisions they stand for
/// (§IV "Workloads": 18/38/76/153/307 ↔ 2/4/8/16/32 words).
pub const LEN_SERIES: [usize; 5] = [2, 4, 8, 16, 32];

/// Result precision for a LEN.
pub fn precision_for_len(len: usize) -> u32 {
    up_num::max_precision_for_lw(len)
}

/// Helpers for system-sweep harnesses.
pub mod runner {
    use super::scale_modeled;
    use up_engine::{ColumnType, Database, ModeledTime, Profile, Schema, Value};
    use up_num::{DecimalType, UpDecimal};
    use up_workloads::datagen;

    /// Builds a database holding one table of decimal columns filled with
    /// seeded random data (`headroom` digits held back per column).
    pub fn decimal_db(
        profile: Profile,
        table: &str,
        cols: &[(&str, DecimalType)],
        n: usize,
        headroom: u32,
        seed: u64,
    ) -> Database {
        let mut db = Database::new(profile);
        db.create_table(
            table,
            Schema::new(cols.iter().map(|(nm, ty)| (*nm, ColumnType::Decimal(*ty))).collect()),
        );
        let data: Vec<Vec<UpDecimal>> = cols
            .iter()
            .enumerate()
            .map(|(c, (_, ty))| {
                datagen::random_decimal_column(n, *ty, headroom, true, seed + c as u64)
            })
            .collect();
        for i in 0..n {
            let row = data.iter().map(|col| Value::Decimal(col[i].clone())).collect();
            db.insert(table, row).unwrap();
        }
        db
    }

    /// One system's outcome in a sweep: a scaled modeled time, or the
    /// failure reason (capability errors are results, not bugs — the
    /// paper plots the missing bars the same way).
    #[derive(Clone, Debug)]
    pub struct Outcome {
        /// System name.
        pub system: String,
        /// Modeled time (scaled), or the failure string.
        pub result: Result<ModeledTime, String>,
    }

    impl Outcome {
        /// Renders the total (or the failure).
        pub fn cell(&self) -> String {
            match &self.result {
                Ok(m) => super::fmt_time(m.total()),
                Err(e) => super::fmt_fail(e),
            }
        }
    }

    /// Runs `sql` on a freshly-built database for each profile, scaling
    /// the modeled time by `scale`. `warm` re-runs the query once so the
    /// kernel cache absorbs compilation (Table I methodology).
    pub fn sweep(
        profiles: &[Profile],
        mut build: impl FnMut(Profile) -> Database,
        sql: &str,
        scale: f64,
        warm: bool,
    ) -> Vec<Outcome> {
        profiles
            .iter()
            .map(|&p| {
                let db = build(p);
                let run = || -> Result<ModeledTime, String> {
                    let r = db.query(sql).map_err(|e| e.to_string())?;
                    Ok(r.modeled)
                };
                let mut result = run();
                if warm && result.is_ok() {
                    result = run();
                }
                Outcome {
                    system: p.name().to_string(),
                    result: result.map(|m| scale_modeled(&m, scale)),
                }
            })
            .collect()
    }
}

/// Direct kernel-level measurement (the Fig. 10–12 GPU-kernel figures
/// report kernel execution time, not end-to-end queries).
pub mod kernels {
    use up_gpusim::cost::{kernel_time, KernelTime};
    use up_gpusim::{
        launch_with, DeviceConfig, ExecStats, GlobalMem, LaunchConfig, SimParallelism,
    };
    use up_jit::cache::{Compiled, JitEngine, JitOptions};
    use up_jit::Expr;
    use up_num::{encode_compact, UpDecimal};

    /// One priced kernel execution, extrapolated to `n_report` tuples.
    #[derive(Clone, Debug)]
    pub struct KernelRun {
        /// Priced time at the reported tuple count.
        pub time: KernelTime,
        /// Raw (scaled) statistics.
        pub stats: ExecStats,
        /// Static instructions of the generated kernel.
        pub static_insts: usize,
        /// Estimated hardware registers per thread.
        pub hw_regs: u32,
        /// Result word length.
        pub out_lw: usize,
    }

    /// Compiles `expr` under `opts`, runs it functionally over `cols`
    /// (expression slot `i` reads `cols[i]`), linearly extrapolates the
    /// statistics to `n_report` tuples, and prices them on the A6000
    /// profile. Returns `None` for expressions folded to a passthrough
    /// ("no GPU kernel is generated").
    pub fn run_expr(
        expr: &Expr,
        cols: &[Vec<UpDecimal>],
        opts: JitOptions,
        n_report: u64,
    ) -> Option<KernelRun> {
        run_expr_with(expr, cols, opts, n_report, SimParallelism::Auto)
    }

    /// [`run_expr`] under an explicit simulator-parallelism setting.
    /// Statistics (and therefore priced times) are identical across
    /// settings; only host wall clock changes.
    pub fn run_expr_with(
        expr: &Expr,
        cols: &[Vec<UpDecimal>],
        opts: JitOptions,
        n_report: u64,
        par: SimParallelism,
    ) -> Option<KernelRun> {
        let n = cols.first().map(|c| c.len()).unwrap_or(0).max(1);
        let jit = JitEngine::new(opts);
        let (compiled, _) = jit.compile(expr);
        let Compiled::Kernel(k) = compiled else {
            return None;
        };
        let device = DeviceConfig::a6000();
        let mut mem = GlobalMem::new();
        for col in cols.iter().take(k.n_inputs) {
            let ty = col[0].dtype();
            let mut bytes = Vec::with_capacity(n * ty.lb());
            for v in col {
                bytes.extend(encode_compact(v, ty).expect("fits declared type"));
            }
            mem.add_buffer(bytes);
        }
        mem.alloc(n * k.out_ty.lb());
        let cfg = LaunchConfig::for_tuples(n as u64, 256, &device);
        let mut stats = launch_with(&k.kernel, cfg, &device, &mut mem, &[n as u32], par)
            .expect("kernel launch");
        let factor = n_report as f64 / n as f64;
        stats = scale_stats(stats, factor);
        let time = kernel_time(&k.kernel, &stats, &device);
        Some(KernelRun {
            time,
            stats,
            static_insts: k.kernel.static_inst_count(),
            hw_regs: k.kernel.hw_regs_per_thread,
            out_lw: k.out_ty.lw(),
        })
    }

    fn scale_stats(s: ExecStats, f: f64) -> ExecStats {
        ExecStats {
            thread_insts: (s.thread_insts as f64 * f) as u64,
            warp_issue_cycles: s.warp_issue_cycles * f,
            warp_issues: (s.warp_issues as f64 * f) as u64,
            mem_transactions: (s.mem_transactions as f64 * f) as u64,
            dram_bytes: (s.dram_bytes as f64 * f) as u64,
            divergent_branches: (s.divergent_branches as f64 * f) as u64,
            warps: (s.warps as f64 * f) as u64,
            blocks: (s.blocks as f64 * f) as u64,
            sample_scale: f,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_keeps_compile_constant() {
        let m = ModeledTime {
            scan_s: 1.0,
            pcie_s: 2.0,
            compile_s: 3.0,
            kernel_s: 4.0,
            cpu_s: 5.0,
            queue_s: 0.0,
        };
        let s = scale_modeled(&m, 10.0);
        assert_eq!(s.compile_s, 3.0);
        assert_eq!(s.kernel_s, 40.0);
        assert_eq!(s.total(), 10.0 + 20.0 + 3.0 + 40.0 + 50.0);
    }

    #[test]
    fn len_series_matches_paper() {
        let ps: Vec<u32> = LEN_SERIES.iter().map(|&l| precision_for_len(l)).collect();
        assert_eq!(ps, vec![18, 38, 76, 153, 307]);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(0.0000005), "0.5 µs");
        assert_eq!(fmt_time(0.123), "123.00 ms");
        assert_eq!(fmt_time(42.0), "42.00 s");
    }
}
