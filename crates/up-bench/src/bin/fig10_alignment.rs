//! Figure 10 — alignment scheduling: kernels for `a+b+a`,
//! `a+b+a+a+a`, and `a+b+a+a+a+a+a` with `b` at scale 11 and `a` at
//! scale 1, with and without the §III-D1 rewrite. Scheduling moves `b`
//! to the end, cutting the per-tuple alignments from 2/4/6 to 1.
//!
//! Expected shape: savings grow with precision and expression length —
//! the paper reports 16.5% for the short expression at LEN 2 up to 34%
//! for the long one at LEN 32.

use up_bench::{fmt_time, kernels, precision_for_len, print_header, print_row, HarnessOpts, LEN_SERIES};
use up_jit::cache::JitOptions;
use up_jit::{alignment_count, Expr};
use up_num::DecimalType;
use up_workloads::datagen;

fn build_expr(n_a: usize, a_ty: DecimalType, b_ty: DecimalType) -> Expr {
    let a = |i| Expr::col(0, a_ty, format!("a{i}"));
    let mut e = a(0).add(Expr::col(1, b_ty, "b"));
    for i in 1..n_a {
        e = e.add(a(i));
    }
    e
}

fn main() {
    let opts = HarnessOpts::from_args(4_000);
    println!(
        "Figure 10: alignment scheduling — kernel time at {} tuples (simulated {})\n",
        opts.report_tuples, opts.sim_tuples
    );

    let scheduled = JitOptions { schedule_alignment: true, fold_constants: false, prealign_constants: false };
    let unscheduled = JitOptions::none();

    for (n_a, label) in [(2usize, "a+b+a"), (4, "a+b+a+a+a"), (6, "a+b+a+a+a+a+a")] {
        println!("expression: {label}");
        let widths = [7usize, 13, 13, 9, 14];
        print_header(&["LEN", "unscheduled", "scheduled", "saving", "alignments"], &widths);
        for &len in &LEN_SERIES {
            let result_p = precision_for_len(len);
            // The sum result gains ceil(log2-ish) digits; leave slack.
            let a_p = result_p.saturating_sub(n_a as u32 + 11).max(12);
            let a_ty = DecimalType::new_unchecked(a_p, 1);
            let b_ty = if len == 2 {
                DecimalType::new_unchecked(17, 11)
            } else {
                DecimalType::new_unchecked(18, 11)
            };
            let e = build_expr(n_a, a_ty, b_ty);
            let cols = vec![
                datagen::random_decimal_column(opts.sim_tuples, a_ty, 3, true, 1),
                datagen::random_decimal_column(opts.sim_tuples, b_ty, 3, true, 2),
            ];
            let jit_s = up_jit::cache::JitEngine::new(scheduled);
            let jit_u = up_jit::cache::JitEngine::new(unscheduled);
            let opt_s = jit_s.optimize(&e);
            let opt_u = jit_u.optimize(&e);
            let run_u = kernels::run_expr(&e, &cols, unscheduled, opts.report_tuples)
                .expect("kernel");
            let run_s = kernels::run_expr(&e, &cols, scheduled, opts.report_tuples)
                .expect("kernel");
            let saving = 1.0 - run_s.time.total_s / run_u.time.total_s;
            print_row(
                &[
                    format!("{len}"),
                    fmt_time(run_u.time.total_s),
                    fmt_time(run_s.time.total_s),
                    format!("{:.1}%", saving * 100.0),
                    format!("{} → {}", alignment_count(&opt_u), alignment_count(&opt_s)),
                ],
                &widths,
            );
        }
        println!();
    }
    println!("Paper reference points: 16.5% (a+b+a, LEN 2) … 34% (7-term, LEN 32).");
}
