//! `bench_pipeline` — intra-query launch pipelining, off vs on.
//!
//! Runs one multi-expression projection (8 distinct wide-decimal
//! kernels over the same table) with the plan-level launch DAG off and
//! on, measuring host wall-clock. To make JIT latency *real* on the
//! host — the paper's NVCC invocations take 320–423 ms each, while this
//! simulator's code generation is microseconds — the JIT engine runs
//! with NVCC latency emulation: every cache miss sleeps its modeled
//! compile time. Serially that is ~8 back-to-back compiles; pipelined,
//! the DAG starts every first-occurrence compile up front on its own
//! host thread, so the sleeps overlap and the query completes in
//! roughly one compile time. This is exactly the overlap a real
//! deployment gets from concurrent `nvrtc` invocations, reproduced
//! faithfully even on a single-core host.
//!
//! Every pipelined run is checked against the `off` reference:
//! identical rows and bit-equal modeled time (`f64::to_bits`) — speed
//! without determinism is a bug, not a result. The JSON also reports
//! the modeled stream-utilization gain of the pipelined timeline over
//! serial placement.
//!
//! Usage: `bench_pipeline [--quick] [--tuples N] [--out PATH]`.
//! Results land in `results/BENCH_pipeline.json`.

use std::time::Instant;
use up_bench::HarnessOpts;
use up_engine::{ColumnType, Database, Profile, QueryResult, Schema, Value};
use up_gpusim::par::auto_threads;
use up_gpusim::{DeviceConfig, PipelineMode, SimParallelism};
use up_jit::cache::JitEngine;
use up_num::DecimalType;
use up_workloads::datagen;

/// Eight structurally distinct expression slots — eight kernel
/// signatures, so the serial reference pays eight full compiles.
const SQL: &str = "SELECT a * a + b, a * b - a, a + b * b, a * a - b * b, \
                   a * b + b, a - a * b, b * b + a * a, a * a * b FROM w";

fn fresh_db(n: usize, mode: PipelineMode) -> Database {
    let ty = DecimalType::new_unchecked(40, 4);
    let mut jit = JitEngine::with_defaults();
    jit.set_nvcc_latency_emulation(true);
    let mut db = Database::with_config(Profile::UltraPrecise, DeviceConfig::a6000(), jit);
    db.pipeline = mode;
    // Keep the comparison purely about pipelining: block execution
    // stays serial inside every DAG node.
    db.sim_par = SimParallelism::Serial;
    db.create_table(
        "w",
        Schema::new(vec![("a", ColumnType::Decimal(ty)), ("b", ColumnType::Decimal(ty))]),
    );
    let a = datagen::random_decimal_column(n, ty, 2, true, 31);
    let b = datagen::random_decimal_column(n, ty, 2, true, 32);
    db.insert_many(
        "w",
        a.into_iter().zip(b).map(|(x, y)| vec![Value::Decimal(x), Value::Decimal(y)]),
    )
    .expect("rows fit declared type");
    db
}

fn assert_identical(mode: &str, off: &QueryResult, r: &QueryResult) {
    assert_eq!(off.rows.len(), r.rows.len(), "{mode}: row count");
    for (x, y) in off.rows.iter().zip(&r.rows) {
        for (a, b) in x.iter().zip(y) {
            assert_eq!(a.render(), b.render(), "{mode}: values");
        }
    }
    for (name, a, b) in [
        ("compile_s", off.modeled.compile_s, r.modeled.compile_s),
        ("kernel_s", off.modeled.kernel_s, r.modeled.kernel_s),
        ("pcie_s", off.modeled.pcie_s, r.modeled.pcie_s),
        ("cpu_s", off.modeled.cpu_s, r.modeled.cpu_s),
    ] {
        assert_eq!(a.to_bits(), b.to_bits(), "{mode}: modeled {name} must be bit-equal");
    }
    assert_eq!(off.kernels, r.kernels, "{mode}: kernel count");
}

fn main() {
    let opts = HarnessOpts::from_args(4_096);
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/BENCH_pipeline.json".to_string());
    let n = opts.sim_tuples;
    let reps = if opts.quick { 1 } else { 3 };
    println!(
        "bench_pipeline: {n} tuples, 8 expression slots, {reps} rep(s), \
         host threads {}, NVCC latency emulation on\n",
        auto_threads()
    );

    // Best-of-reps wall clock; a fresh database (fresh kernel cache)
    // every rep so each run pays its compiles like a cold server.
    let run = |mode: PipelineMode| -> (QueryResult, f64) {
        let mut best = f64::INFINITY;
        let mut kept = None;
        for _ in 0..reps {
            let db = fresh_db(n, mode);
            let t0 = Instant::now();
            let r = db.query(SQL).expect("pipeline workload");
            let wall = t0.elapsed().as_secs_f64();
            if wall < best {
                best = wall;
                kept = Some(r);
            }
        }
        (kept.expect("at least one rep"), best)
    };

    let (off, off_wall) = run(PipelineMode::Off);
    println!("{:<8} {:>9.3} s  (reference)", "off", off_wall);
    let mut mode_json = vec![format!(
        "{{\"mode\":\"off\",\"wall_s\":{off_wall:.6},\"speedup_vs_off\":1.0,\
         \"identical_to_off\":true}}"
    )];

    let mut on8_report = None;
    for mode in [PipelineMode::On(2), PipelineMode::On(8)] {
        let (r, wall) = run(mode);
        assert_identical(&mode.to_string(), &off, &r);
        let speedup = off_wall / wall;
        println!("{:<8} {:>9.3} s  {speedup:>5.2}x", mode.to_string(), wall);
        mode_json.push(format!(
            "{{\"mode\":\"{mode}\",\"wall_s\":{wall:.6},\"speedup_vs_off\":{speedup:.3},\
             \"identical_to_off\":true}}"
        ));
        if mode == PipelineMode::On(8) {
            assert!(
                speedup >= 1.3,
                "on(8) must overlap compiles for ≥1.3x host wall-clock, got {speedup:.2}x"
            );
            on8_report = Some(r.pipeline.expect("pipelined run reports a timeline"));
        }
    }

    let p = on8_report.expect("on(8) ran");
    // Serial issue order on the same stream pool keeps one engine busy
    // at a time, so its capacity window is the full no-overlap timeline:
    // utilization = exec / (streams × serial). The pipelined timeline
    // packs the same exec seconds into its (shorter) makespan.
    let util_serial = if p.serial_s > 0.0 {
        p.exec_s / (p.streams as f64 * p.serial_s)
    } else {
        0.0
    };
    assert!(
        p.utilization > util_serial,
        "pipelined stream utilization {:.4} must beat serial {util_serial:.4}",
        p.utilization
    );
    println!(
        "\nmodeled timeline (on(8)): {} nodes, serial {:.3} s → makespan {:.3} s \
         (overlap {:.3} s), stream utilization {:.4}% vs {:.4}% serial",
        p.nodes,
        p.serial_s,
        p.makespan_s,
        p.overlap_s,
        p.utilization * 100.0,
        util_serial * 100.0,
    );

    let json = format!(
        "{{\"bench\":\"pipeline\",\"host_threads\":{},\"quick\":{},\"tuples\":{n},\
         \"expr_slots\":8,\"reps\":{reps},\"nvcc_latency_emulation\":true,\
         \"modes\":[{}],\
         \"timeline_on8\":{{\"nodes\":{},\"streams\":{},\"compile_lanes\":{},\
         \"serial_s\":{:.6},\"makespan_s\":{:.6},\"overlap_s\":{:.6},\
         \"utilization\":{:.8},\"utilization_serial\":{:.8}}}}}\n",
        auto_threads(),
        opts.quick,
        mode_json.join(","),
        p.nodes,
        p.streams,
        p.compile_lanes,
        p.serial_s,
        p.makespan_s,
        p.overlap_s,
        p.utilization,
        util_serial
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(&out_path, &json).expect("write BENCH_pipeline.json");
    println!("wrote {out_path}");
}
