//! Figure 15 — sin(x + ε) via SQL Taylor polynomials of 2..11 terms over
//! DECIMAL(9,8) radians near 0.01, 0.78 (π/4), and 1.56 (π/2); execution
//! time against mean absolute error, per system (§IV-D4).
//!
//! Expected shape: UltraPrecise sits two orders of magnitude below the
//! CPU systems in time and scales mildly with polynomial length, while
//! PostgreSQL/H2/CockroachDB grow by hundreds of seconds; H2's +20-digit
//! divisions buy it the lowest error floor at extra cost.

use up_bench::{fmt_time, print_header, print_row, HarnessOpts};
use up_engine::{ColumnType, Database, Profile, Schema, Value};
use up_num::UpDecimal;
use up_workloads::{datagen, trig};

fn main() {
    let opts = HarnessOpts::from_args(600);
    println!(
        "Figure 15: sin(x+ε) Taylor polynomials — {} rows scaled to {}\n",
        opts.sim_tuples, opts.report_tuples
    );

    let systems = [
        Profile::PostgresLike,
        Profile::H2Like,
        Profile::CockroachLike,
        Profile::UltraPrecise,
    ];
    let ty = trig::radian_type();

    for regime in trig::Regime::ALL {
        println!(
            "input x ~ N({}, 0.01²)  — column {}",
            regime.mean(),
            regime.column()
        );
        let radians = datagen::normal_radian_column(
            opts.sim_tuples,
            ty,
            regime.mean(),
            0.01,
            1500 + regime.mean() as u64,
        );
        let truth: Vec<UpDecimal> =
            radians.iter().map(|x| trig::sin_ground_truth(x, 320)).collect();

        let widths = [7usize, 16, 12, 16, 12, 16, 12, 16, 12];
        print_header(
            &[
                "terms", "PG MAE", "PG t", "H2 MAE", "H2 t", "CRDB MAE", "CRDB t", "UP MAE",
                "UP t",
            ],
            &widths,
        );
        for terms in [2u32, 3, 5, 7, 9, 11] {
            let sql = trig::taylor_sql(regime.column(), terms);
            let mut cells = vec![format!("{terms}")];
            for &sys in &systems {
                let mut db = Database::new(sys);
                db.create_table(
                    "r5",
                    Schema::new(vec![(regime.column(), ColumnType::Decimal(ty))]),
                );
                for x in &radians {
                    db.insert("r5", vec![Value::Decimal(x.clone())]).unwrap();
                }
                match db.query(&sql) {
                    Ok(r) => {
                        let approx: Vec<UpDecimal> = r
                            .rows
                            .iter()
                            .map(|row| match &row[0] {
                                Value::Decimal(d) => d.clone(),
                                other => panic!("{other:?}"),
                            })
                            .collect();
                        let mae = trig::mean_absolute_error(&approx, &truth);
                        let m = up_bench::scale_modeled(&r.modeled, opts.scale());
                        cells.push(format!("{mae:.2e}"));
                        cells.push(fmt_time(m.total()));
                    }
                    Err(e) => {
                        cells.push("✗".to_string());
                        cells.push(format!("{e}").chars().take(10).collect());
                    }
                }
            }
            print_row(&cells, &widths);
        }
        println!();
    }
    println!(
        "Ground truth: the same series in exact integer arithmetic at 320 fractional \
         digits (the paper verifies against GMP to 287 digits). Shapes to check: \
         the CPU systems' time explodes with polynomial length while UltraPrecise \
         grows by milliseconds (the paper's two orders of magnitude); for x ≈ 0.01 \
         every system except H2 saturates after 4–5 terms — the division-scale \
         rules underflow the tiny terms ('only 4 digits can hardly protect the \
         division from underflow', §IV-D4) — while H2's +20-digit divisions keep \
         improving at extra cost."
    );
}
