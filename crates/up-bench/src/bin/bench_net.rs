//! `bench_net` — wire-protocol load harness: 1k+ simulated clients over
//! loopback TCP against one `WireServer`.
//!
//! Four tenants share the server with skewed DRR admission weights and
//! skewed client populations (a hot/cold mix):
//!
//! | tenant   | weight | share of clients |
//! |----------|--------|------------------|
//! | hot-a    | 4.0    | 40%              |
//! | hot-b    | 2.0    | 30%              |
//! | cold-a   | 1.0    | 20%              |
//! | cold-b   | 1.0    | 10%              |
//!
//! Every client is a real `up_net::Client` on its own thread: connect
//! (with retry — 1k simultaneous SYNs overflow the default backlog),
//! authenticate, run its queries, orderly goodbye. The harness reports
//! per-tenant throughput and latency percentiles (p50/p95/p99) and
//! writes them to `results/BENCH_net.json`, then asserts that nobody
//! starved: every client connected, every query resolved (rows, not
//! errors), and the server's connection cap never refused anyone.
//!
//! Usage: `bench_net [--quick] [--clients N] [--tuples N] [--out PATH]`.
//! Default 1024 clients (64 with `--quick`).

use std::sync::Arc;
use std::time::{Duration, Instant};
use up_bench::HarnessOpts;
use up_engine::{ColumnType, Schema, Value};
use up_net::{Client, NetConfig, TenantQuota, TenantRegistry, WireServer};
use up_num::{DecimalType, UpDecimal};
use up_server::{ServerConfig, UpServer};

const TENANTS: [(&str, f64, usize); 4] =
    [("hot-a", 4.0, 40), ("hot-b", 2.0, 30), ("cold-a", 1.0, 20), ("cold-b", 1.0, 10)];

/// Small per-client stack: ~2k threads live at peak (client + server
/// side), so the default 8 MiB would be wasteful.
const CLIENT_STACK: usize = 256 * 1024;

fn seeded_server(rows: usize) -> Arc<UpServer> {
    let t = DecimalType::new_unchecked(12, 2);
    let up = Arc::new(UpServer::new(ServerConfig {
        workers: 4,
        queue_capacity: 4096,
        arena: true,
        default_timeout: Duration::from_secs(300),
        ..ServerConfig::default()
    }));
    up.create_table("t", Schema::new(vec![("x", ColumnType::Decimal(t))]));
    up.insert_many(
        "t",
        (0..rows).map(|i| {
            let s = format!("{}.{:02}", (i * 37) % 900, i % 100);
            vec![Value::Decimal(UpDecimal::parse(&s, t).unwrap())]
        }),
    )
    .expect("seed rows fit");
    up
}

/// The query mix: cheap scans and an aggregate, varied per client so
/// traffic is not one kernel signature.
fn query_for(client_ix: usize, rep: usize) -> &'static str {
    match (client_ix + rep) % 3 {
        0 => "SELECT SUM(x) FROM t",
        1 => "SELECT x + x FROM t WHERE x > 450 LIMIT 8",
        _ => "SELECT SUM(x * x) FROM t",
    }
}

fn connect_with_retry(addr: std::net::SocketAddr, tenant: &'static str) -> Client {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match Client::connect(addr, tenant, "bench") {
            Ok(c) => return c,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "client for {tenant} could not connect within 60 s: {e}"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

struct TenantOutcome {
    name: &'static str,
    weight: f64,
    clients: usize,
    queries: usize,
    latencies_s: Vec<f64>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    sorted[((p * n as f64).ceil() as usize).clamp(1, n) - 1]
}

fn main() {
    let opts = HarnessOpts::from_args(512);
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag("--out").unwrap_or_else(|| "results/BENCH_net.json".to_string());
    let total_clients: usize = flag("--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if opts.quick { 64 } else { 1024 });
    let reps_per_client = if opts.quick { 2 } else { 3 };

    let up = seeded_server(opts.sim_tuples);
    let tenants = Arc::new(TenantRegistry::new());
    for (name, weight, _) in TENANTS {
        tenants.register(name, "bench", TenantQuota { weight, ..TenantQuota::default() });
    }
    let server = WireServer::start(
        Arc::clone(&up),
        Arc::clone(&tenants),
        NetConfig {
            addr: "127.0.0.1:0".into(),
            max_conns: total_clients + 64,
            idle_timeout: Duration::from_secs(120),
            ..NetConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();
    println!(
        "bench_net: {total_clients} clients x {reps_per_client} queries over {addr}, \
         {} tuples, 4 workers, DRR weights {:?}\n",
        opts.sim_tuples,
        TENANTS.map(|(n, w, _)| format!("{n}={w}")),
    );

    // Partition clients over tenants by the configured shares.
    let mut assignment: Vec<&'static str> = Vec::with_capacity(total_clients);
    for (name, _, share) in TENANTS {
        let n = (total_clients * share) / 100;
        assignment.extend(std::iter::repeat_n(name, n));
    }
    while assignment.len() < total_clients {
        assignment.push(TENANTS[0].0);
    }

    let t0 = Instant::now();
    let handles: Vec<_> = assignment
        .iter()
        .enumerate()
        .map(|(ix, &tenant)| {
            std::thread::Builder::new()
                .name(format!("bench-client-{ix}"))
                .stack_size(CLIENT_STACK)
                .spawn(move || {
                    let mut client = connect_with_retry(addr, tenant);
                    let mut latencies = Vec::with_capacity(reps_per_client);
                    for rep in 0..reps_per_client {
                        let q0 = Instant::now();
                        let rows = client
                            .query(query_for(ix, rep))
                            .unwrap_or_else(|e| panic!("client {ix} ({tenant}): {e}"));
                        assert!(!rows.columns.is_empty(), "client {ix}: empty result shape");
                        latencies.push(q0.elapsed().as_secs_f64());
                    }
                    client.goodbye().unwrap_or_else(|e| panic!("client {ix} goodbye: {e}"));
                    (tenant, latencies)
                })
                .expect("spawn bench client")
        })
        .collect();

    let mut outcomes: Vec<TenantOutcome> = TENANTS
        .iter()
        .map(|&(name, weight, _)| TenantOutcome {
            name,
            weight,
            clients: 0,
            queries: 0,
            latencies_s: Vec::new(),
        })
        .collect();
    for h in handles {
        let (tenant, lats) = h.join().expect("bench client thread");
        let o = outcomes.iter_mut().find(|o| o.name == tenant).expect("known tenant");
        o.clients += 1;
        o.queries += lats.len();
        o.latencies_s.extend(lats);
    }
    let wall_s = t0.elapsed().as_secs_f64();

    println!(
        "{:<8} {:>7} {:>8} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "tenant", "weight", "clients", "queries", "qps", "p50", "p95", "p99"
    );
    let mut tenant_json = Vec::new();
    let mut total_queries = 0usize;
    for o in &mut outcomes {
        o.latencies_s.sort_by(f64::total_cmp);
        total_queries += o.queries;
        let qps = o.queries as f64 / wall_s;
        let (p50, p95, p99) = (
            percentile(&o.latencies_s, 0.50),
            percentile(&o.latencies_s, 0.95),
            percentile(&o.latencies_s, 0.99),
        );
        println!(
            "{:<8} {:>7.1} {:>8} {:>8} {:>10.2} {:>8.3} s {:>8.3} s {:>8.3} s",
            o.name, o.weight, o.clients, o.queries, qps, p50, p95, p99
        );
        tenant_json.push(format!(
            "{{\"tenant\":\"{}\",\"weight\":{},\"clients\":{},\"queries\":{},\
             \"qps\":{:.3},\"p50_s\":{:.6},\"p95_s\":{:.6},\"p99_s\":{:.6}}}",
            o.name, o.weight, o.clients, o.queries, qps, p50, p95, p99
        ));
    }

    let wire = server.stats();
    let m = up.metrics();
    println!(
        "\ntotal: {total_queries} queries in {wall_s:.3} s ({:.2} qps), \
         {} conns accepted, {} refused, {} protocol errors",
        total_queries as f64 / wall_s,
        wire.accepted,
        wire.refused,
        wire.protocol_errors
    );

    // The acceptance bar: nobody starved and nothing leaked.
    assert_eq!(wire.refused, 0, "connection cap must not starve the configured fleet");
    assert_eq!(wire.protocol_errors, 0, "clean traffic must not trip protocol errors");
    assert_eq!(
        total_queries,
        total_clients * reps_per_client,
        "every query must resolve with rows"
    );
    assert_eq!(m.failed + m.rejected + m.timed_out + m.canceled, 0, "no server-side failures");
    for (name, ..) in TENANTS {
        let s = tenants.stats(name).expect("tenant registered");
        assert_eq!(s.inflight, 0, "{name}: in-flight queries drained");
        assert_eq!(s.errors, 0, "{name}: no errors");
    }

    let json = format!(
        "{{\"bench\":\"net\",\"quick\":{},\"clients\":{total_clients},\
         \"queries_per_client\":{reps_per_client},\"tuples\":{},\"workers\":4,\
         \"wall_s\":{wall_s:.6},\"total_qps\":{:.3},\
         \"conns_accepted\":{},\"conns_refused\":{},\
         \"tenants\":[{}]}}\n",
        opts.quick,
        opts.sim_tuples,
        total_queries as f64 / wall_s,
        wire.accepted,
        wire.refused,
        tenant_json.join(",")
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(&out_path, &json).expect("write BENCH_net.json");
    println!("wrote {out_path}");
    drop(server); // joins every connection thread before exit
}
