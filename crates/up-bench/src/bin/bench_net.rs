//! `bench_net` — wire-protocol load harness: a connection-scaling
//! matrix of simulated clients over loopback TCP against one
//! `WireServer` per cell.
//!
//! Each cell is `mode × connections` (mode ∈ {threads, epoll};
//! connections ∈ 256/1k/4k by default) with an idle+active mix: 1/4 of
//! the connections run queries, the rest hold authenticated sockets
//! open — the shape that separates per-connection fixed cost (threads,
//! stacks) from per-query work. Per cell the harness reports
//! throughput, per-tenant latency percentiles, OS threads (total
//! process peak plus the server's own `up-net-*`/`up-worker-*` threads
//! counted by name from `/proc/self/task`), and peak RSS.
//!
//! Four tenants share each server with skewed DRR admission weights
//! and skewed active-client populations (a hot/cold mix):
//!
//! | tenant   | weight | share of active clients |
//! |----------|--------|-------------------------|
//! | hot-a    | 4.0    | 40%                     |
//! | hot-b    | 2.0    | 30%                     |
//! | cold-a   | 1.0    | 20%                     |
//! | cold-b   | 1.0    | 10%                     |
//!
//! Results land in `results/BENCH_net.json` (schema
//! `net-conn-scaling-v2`, see `results/README.md`). The harness asserts
//! that nobody starved (no refusals, no protocol errors, every query
//! resolved), that epoll cells run with no per-connection threads
//! (`up-net-*` count ≤ event_threads + acceptor), and — under
//! `--reactor` — that the reactor's throughput at the comparison size
//! is at least the threads-mode baseline.
//!
//! Usage: `bench_net [--quick] [--reactor] [--clients N] [--tuples N]
//! [--out PATH]`.
//! * default: full matrix (threads@{256,1024}, epoll@{256,1024,4096})
//! * `--quick`: one CI-sized epoll cell (64 connections)
//! * `--reactor`: threads-vs-epoll comparison at 256 connections (or
//!   `--clients N`) with the throughput assertion; combine with
//!   `--quick` for the CI artifact
//! * `--clients N`: override the cell size (single-cell / comparison
//!   runs)

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use up_bench::HarnessOpts;
use up_engine::{ColumnType, Schema, Value};
use up_net::{Client, NetConfig, ReactorMode, TenantQuota, TenantRegistry, WireServer};
use up_num::{DecimalType, UpDecimal};
use up_server::{ServerConfig, UpServer};

const TENANTS: [(&str, f64, usize); 4] =
    [("hot-a", 4.0, 40), ("hot-b", 2.0, 30), ("cold-a", 1.0, 20), ("cold-b", 1.0, 10)];

const WORKERS: usize = 4;

/// Small per-client stack: active clients are threads, and threads-mode
/// cells add two server threads per connection on top.
const CLIENT_STACK: usize = 256 * 1024;

fn seeded_server(rows: usize) -> Arc<UpServer> {
    let t = DecimalType::new_unchecked(12, 2);
    let up = Arc::new(UpServer::new(ServerConfig {
        workers: WORKERS,
        queue_capacity: 4096,
        arena: true,
        default_timeout: Duration::from_secs(300),
        ..ServerConfig::default()
    }));
    up.create_table("t", Schema::new(vec![("x", ColumnType::Decimal(t))]));
    up.insert_many(
        "t",
        (0..rows).map(|i| {
            let s = format!("{}.{:02}", (i * 37) % 900, i % 100);
            vec![Value::Decimal(UpDecimal::parse(&s, t).unwrap())]
        }),
    )
    .expect("seed rows fit");
    up
}

/// The query mix: cheap scans and an aggregate, varied per client so
/// traffic is not one kernel signature.
fn query_for(client_ix: usize, rep: usize) -> &'static str {
    match (client_ix + rep) % 3 {
        0 => "SELECT SUM(x) FROM t",
        1 => "SELECT x + x FROM t WHERE x > 450 LIMIT 8",
        _ => "SELECT SUM(x * x) FROM t",
    }
}

fn connect_with_retry(addr: std::net::SocketAddr, tenant: &'static str) -> Client {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match Client::connect(addr, tenant, "bench") {
            Ok(c) => return c,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "client for {tenant} could not connect within 60 s: {e}"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

// ---- /proc sampling ----------------------------------------------------

/// Reads an integer field (`Threads:`, `VmRSS:`, `VmHWM:`) from
/// `/proc/self/status`; `None` off Linux.
fn proc_status(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Counts live threads by `comm` prefix: (`up-net-*`, `up-worker-*`).
/// The benchmark's own client threads are named `bench-*`, so these two
/// prefixes isolate the server's side of the process.
fn server_thread_counts() -> (usize, usize) {
    let (mut wire, mut workers) = (0, 0);
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else { return (0, 0) };
    for task in tasks.flatten() {
        let comm = std::fs::read_to_string(task.path().join("comm")).unwrap_or_default();
        let comm = comm.trim();
        if comm.starts_with("up-net-") {
            wire += 1;
        } else if comm.starts_with("up-worker-") {
            workers += 1;
        }
    }
    (wire, workers)
}

/// Resets the kernel's peak-RSS watermark (`VmHWM`) so each cell gets
/// its own peak. Best-effort: needs a writable `/proc/self/clear_refs`.
fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Samples `Threads:` and `VmRSS:` until stopped, keeping the maxima.
struct PeakSampler {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<(u64, u64)>,
}

impl PeakSampler {
    fn start() -> PeakSampler {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("bench-sampler".into())
            .spawn(move || {
                let (mut threads, mut rss) = (0u64, 0u64);
                while !stop2.load(Ordering::Relaxed) {
                    threads = threads.max(proc_status("Threads:").unwrap_or(0));
                    rss = rss.max(proc_status("VmRSS:").unwrap_or(0));
                    std::thread::sleep(Duration::from_millis(10));
                }
                (threads, rss)
            })
            .expect("spawn sampler");
        PeakSampler { stop, handle }
    }

    /// (peak process threads, peak RSS in KiB) over the sampled window.
    fn finish(self) -> (u64, u64) {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().expect("sampler thread")
    }
}

// ---- one matrix cell ---------------------------------------------------

struct TenantOutcome {
    name: &'static str,
    weight: f64,
    clients: usize,
    queries: usize,
    latencies_s: Vec<f64>,
}

struct CellResult {
    mode: &'static str,
    conns: usize,
    active: usize,
    queries: usize,
    wall_s: f64,
    qps: f64,
    wire_threads: usize,
    worker_threads: usize,
    peak_threads: u64,
    peak_rss_kb: u64,
    vm_hwm_kb: u64,
    hwm_reset: bool,
    tenants: Vec<TenantOutcome>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    sorted[((p * n as f64).ceil() as usize).clamp(1, n) - 1]
}

fn run_cell(mode: ReactorMode, conns: usize, reps: usize, tuples: usize) -> CellResult {
    let active = (conns / 4).max(1);
    let idle = conns - active;
    let hwm_reset = reset_peak_rss();
    let sampler = PeakSampler::start();

    let up = seeded_server(tuples);
    let tenants = Arc::new(TenantRegistry::new());
    for (name, weight, _) in TENANTS {
        tenants.register(name, "bench", TenantQuota { weight, ..TenantQuota::default() });
    }
    let server = WireServer::start(
        Arc::clone(&up),
        Arc::clone(&tenants),
        NetConfig {
            addr: "127.0.0.1:0".into(),
            reactor: mode,
            max_conns: conns + 64,
            // Idle connections must survive the whole cell untouched.
            idle_timeout: Duration::from_secs(600),
            ..NetConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();
    let mode_name = server.mode().name();
    println!(
        "cell {mode_name}@{conns}: {active} active x {reps} queries + {idle} idle, \
         {tuples} tuples, {WORKERS} workers"
    );

    // Idle fleet: authenticated sockets held open from this thread — no
    // client-side thread cost, so thread counts isolate the server.
    let idle_clients: Vec<Client> = (0..idle)
        .map(|i| connect_with_retry(addr, TENANTS[i % TENANTS.len()].0))
        .collect();

    // Active fleet, partitioned over tenants by the configured shares.
    let mut assignment: Vec<&'static str> = Vec::with_capacity(active);
    for (name, _, share) in TENANTS {
        assignment.extend(std::iter::repeat_n(name, (active * share) / 100));
    }
    while assignment.len() < active {
        assignment.push(TENANTS[0].0);
    }

    let connected = Arc::new(AtomicUsize::new(0));
    let start = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = assignment
        .iter()
        .enumerate()
        .map(|(ix, &tenant)| {
            let connected = Arc::clone(&connected);
            let start = Arc::clone(&start);
            std::thread::Builder::new()
                .name(format!("bench-client-{ix}"))
                .stack_size(CLIENT_STACK)
                .spawn(move || {
                    let mut client = connect_with_retry(addr, tenant);
                    connected.fetch_add(1, Ordering::Release);
                    while !start.load(Ordering::Acquire) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    let mut latencies = Vec::with_capacity(reps);
                    for rep in 0..reps {
                        let q0 = Instant::now();
                        let rows = client
                            .query(query_for(ix, rep))
                            .unwrap_or_else(|e| panic!("client {ix} ({tenant}): {e}"));
                        assert!(!rows.columns.is_empty(), "client {ix}: empty result shape");
                        latencies.push(q0.elapsed().as_secs_f64());
                    }
                    client.goodbye().unwrap_or_else(|e| panic!("client {ix} goodbye: {e}"));
                    (tenant, latencies)
                })
                .expect("spawn bench client")
        })
        .collect();

    // Steady state: every connection is up, no query in flight yet.
    // This is where "no per-connection threads" is visible.
    while connected.load(Ordering::Acquire) < active {
        std::thread::sleep(Duration::from_millis(5));
    }
    let wire_now = server.stats();
    assert_eq!(wire_now.active, conns, "{mode_name}@{conns}: full fleet connected");
    let (wire_threads, worker_threads) = server_thread_counts();

    let t0 = Instant::now();
    start.store(true, Ordering::Release);

    let mut outcomes: Vec<TenantOutcome> = TENANTS
        .iter()
        .map(|&(name, weight, _)| TenantOutcome {
            name,
            weight,
            clients: 0,
            queries: 0,
            latencies_s: Vec::new(),
        })
        .collect();
    for h in handles {
        let (tenant, lats) = h.join().expect("bench client thread");
        let o = outcomes.iter_mut().find(|o| o.name == tenant).expect("known tenant");
        o.clients += 1;
        o.queries += lats.len();
        o.latencies_s.extend(lats);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    for o in &mut outcomes {
        o.latencies_s.sort_by(f64::total_cmp);
    }

    for c in idle_clients {
        c.goodbye().expect("idle client goodbye");
    }

    // The acceptance bar: nobody starved and nothing leaked.
    let wire = server.stats();
    let m = up.metrics();
    let queries: usize = outcomes.iter().map(|o| o.queries).sum();
    assert_eq!(wire.refused, 0, "connection cap must not starve the configured fleet");
    assert_eq!(wire.protocol_errors, 0, "clean traffic must not trip protocol errors");
    assert_eq!(wire.idle_closed, 0, "idle fleet must outlive the cell");
    assert_eq!(wire.slow_closed, 0, "active fleet reads its replies");
    assert_eq!(queries, active * reps, "every query must resolve with rows");
    assert_eq!(m.failed + m.rejected + m.timed_out + m.canceled, 0, "no server-side failures");
    for (name, ..) in TENANTS {
        let s = tenants.stats(name).expect("tenant registered");
        assert_eq!(s.inflight, 0, "{name}: in-flight queries drained");
        assert_eq!(s.errors, 0, "{name}: no errors");
    }
    // The reactor's contract: event threads + acceptor, regardless of
    // connection count. (Counted by thread name, so only meaningful
    // where /proc exists and epoll is actually in effect.)
    if mode_name == "epoll" && wire_threads > 0 {
        let budget = NetConfig::default().event_threads + 1;
        assert!(
            wire_threads <= budget,
            "epoll@{conns}: {wire_threads} up-net threads exceed event_threads+acceptor={budget}"
        );
    }

    let mut server = server;
    server.shutdown();
    let (peak_threads, peak_rss_kb) = sampler.finish();
    let vm_hwm_kb = proc_status("VmHWM:").unwrap_or(0);

    CellResult {
        mode: mode_name,
        conns,
        active,
        queries,
        wall_s,
        qps: queries as f64 / wall_s,
        wire_threads,
        worker_threads,
        peak_threads,
        peak_rss_kb,
        vm_hwm_kb,
        hwm_reset,
        tenants: outcomes,
    }
}

// ---- driver ------------------------------------------------------------

fn main() {
    let opts = HarnessOpts::from_args(512);
    let args: Vec<String> = std::env::args().collect();
    let flag =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned());
    let reactor_compare = args.iter().any(|a| a == "--reactor");
    let out_path = flag("--out").unwrap_or_else(|| "results/BENCH_net.json".to_string());
    let clients_override: Option<usize> = flag("--clients").and_then(|v| v.parse().ok());
    let reps = if opts.quick { 2 } else { 3 };

    // The cell list: mode × connection count.
    let cells: Vec<(ReactorMode, usize)> = if reactor_compare {
        let n = clients_override.unwrap_or(256);
        vec![(ReactorMode::Threads, n), (ReactorMode::Epoll, n)]
    } else if let Some(n) = clients_override {
        vec![(ReactorMode::Epoll, n)]
    } else if opts.quick {
        vec![(ReactorMode::Epoll, 64)]
    } else {
        vec![
            (ReactorMode::Threads, 256),
            (ReactorMode::Threads, 1024),
            (ReactorMode::Epoll, 256),
            (ReactorMode::Epoll, 1024),
            (ReactorMode::Epoll, 4096),
        ]
    };
    println!(
        "bench_net: {} cells, {} tuples, {WORKERS} workers, DRR weights {:?}\n",
        cells.len(),
        opts.sim_tuples,
        TENANTS.map(|(n, w, _)| format!("{n}={w}")),
    );

    let results: Vec<CellResult> =
        cells.iter().map(|&(mode, conns)| run_cell(mode, conns, reps, opts.sim_tuples)).collect();

    println!(
        "\n{:<14} {:>7} {:>8} {:>10} {:>9} {:>9} {:>9} {:>12}",
        "cell", "active", "queries", "qps", "net-thr", "wrk-thr", "peak-thr", "peak-rss"
    );
    for r in &results {
        println!(
            "{:<14} {:>7} {:>8} {:>10.2} {:>9} {:>9} {:>9} {:>9} KiB",
            format!("{}@{}", r.mode, r.conns),
            r.active,
            r.queries,
            r.qps,
            r.wire_threads,
            r.worker_threads,
            r.peak_threads,
            r.peak_rss_kb
        );
    }

    // Cross-cell comparison: at equal connection count, the reactor
    // must not cost throughput relative to thread-per-connection.
    let baseline_vs_epoll = |n: usize| {
        let t = results.iter().find(|r| r.mode == "threads" && r.conns == n)?;
        let e = results.iter().find(|r| r.mode == "epoll" && r.conns == n)?;
        Some((t.qps, e.qps))
    };
    let mut compare_json = String::new();
    for n in [256, 1024, 4096] {
        if let Some((threads_qps, epoll_qps)) = baseline_vs_epoll(n) {
            println!(
                "\nreactor comparison @{n}: epoll {epoll_qps:.2} qps vs threads \
                 {threads_qps:.2} qps ({:+.1}%)",
                (epoll_qps / threads_qps - 1.0) * 100.0
            );
            assert!(
                epoll_qps >= threads_qps,
                "epoll throughput ({epoll_qps:.2} qps) fell below the threads-mode \
                 baseline ({threads_qps:.2} qps) at {n} clients"
            );
            compare_json = format!(
                ",\"reactor_compare\":{{\"conns\":{n},\"threads_qps\":{threads_qps:.3},\
                 \"epoll_qps\":{epoll_qps:.3}}}"
            );
        }
    }

    let cell_json: Vec<String> = results
        .iter()
        .map(|r| {
            let tenants: Vec<String> = r
                .tenants
                .iter()
                .map(|o| {
                    format!(
                        "{{\"tenant\":\"{}\",\"weight\":{},\"clients\":{},\"queries\":{},\
                         \"qps\":{:.3},\"p50_s\":{:.6},\"p95_s\":{:.6},\"p99_s\":{:.6}}}",
                        o.name,
                        o.weight,
                        o.clients,
                        o.queries,
                        o.queries as f64 / r.wall_s,
                        percentile(&o.latencies_s, 0.50),
                        percentile(&o.latencies_s, 0.95),
                        percentile(&o.latencies_s, 0.99)
                    )
                })
                .collect();
            format!(
                "{{\"mode\":\"{}\",\"conns\":{},\"active\":{},\"idle\":{},\"queries\":{},\
                 \"wall_s\":{:.6},\"qps\":{:.3},\"wire_threads\":{},\"worker_threads\":{},\
                 \"peak_process_threads\":{},\"peak_rss_kb\":{},\"vm_hwm_kb\":{},\
                 \"hwm_per_cell\":{},\"tenants\":[{}]}}",
                r.mode,
                r.conns,
                r.active,
                r.conns - r.active,
                r.queries,
                r.wall_s,
                r.qps,
                r.wire_threads,
                r.worker_threads,
                r.peak_threads,
                r.peak_rss_kb,
                r.vm_hwm_kb,
                r.hwm_reset,
                tenants.join(",")
            )
        })
        .collect();

    let json = format!(
        "{{\"bench\":\"net\",\"schema\":\"net-conn-scaling-v2\",\"quick\":{},\
         \"tuples\":{},\"workers\":{WORKERS},\"queries_per_client\":{reps},\
         \"cells\":[{}]{compare_json}}}\n",
        opts.quick,
        opts.sim_tuples,
        cell_json.join(",")
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(&out_path, &json).expect("write BENCH_net.json");
    println!("wrote {out_path}");
}
