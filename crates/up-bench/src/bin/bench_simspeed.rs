//! `bench_simspeed` — host-side simulator throughput across execution
//! tiers (tree walker, pre-decoded flat programs, closure-compiled
//! superblocks, and `auto` count-based tier promotion) and host
//! parallelism (serial vs. threaded block execution).
//!
//! Unlike the figure harnesses (which report *modeled* GPU time), this
//! bin measures how fast the functional SIMT executor itself runs on the
//! host: tuples/second of real wall clock for `up-jit`-generated kernels
//! shaped like the paper's workloads:
//!
//! - **fig08 shape**: `c1 + c2 + c3` at LEN 2 — short, memory-lean
//!   kernels where launch overhead and the warp-uniform fast path
//!   dominate.
//! - **fig13 shape** (TPI=32-class instance sizes): `a + b` and `a × b`
//!   at LEN ≥ 8 (precisions 76 and 153) — long multi-limb inner loops
//!   where block-parallel execution pays off.
//! - **fig10 shape** (`codec_align_len8/16`): adds with mismatched
//!   scales, forcing the §III-D alignment codec — kernels dominated by
//!   byte-granular `ld.global.u8`/`st.global.u8` runs, the target of the
//!   compiled tier's lane-affine mem-thunk fast path.
//!
//! Every run is checked against the tree-walker serial reference:
//! byte-identical output buffers, `ExecStats` equal field-for-field, and
//! the priced kernel time bit-equal (`f64::to_bits`). A violation aborts
//! the bench — speed without determinism is a bug, not a result.
//!
//! Usage: `bench_simspeed [--quick] [--tuples N] [--out PATH]
//! [--assert-tiering]`. Results land in `results/BENCH_simspeed.json`.
//! On single-core hosts the thread sweep still runs (explicit
//! `threads(N)` is a demand, not a hint), but no speedup is expected;
//! the speedup targets apply to multi-core machines.
//! `--assert-tiering` exits non-zero unless the compiled tier beats the
//! decoded interpreter on the hot serial cells — the carry-chain (fig13
//! mul) and byte-codec (`codec_align_*`) workloads — the CI guard for
//! tier-promotion and mem-lowering regressions.
//!
//! The `auto` rows exercise count-based promotion live: each workload
//! reuses one kernel, so the first `UP_SIM_TIER_THRESHOLD` auto launches
//! run decoded and the rest run compiled — the determinism check
//! covering the promotion boundary is exactly the point.

use std::time::Instant;
use up_bench::{precision_for_len, HarnessOpts};
use up_gpusim::cost::kernel_time;
use up_gpusim::par::auto_threads;
use up_gpusim::{
    launch_opts, DeviceConfig, ExecBackend, ExecStats, GlobalMem, LaunchConfig, LaunchOpts,
    SimParallelism,
};
use up_jit::cache::{Compiled, JitEngine};
use up_jit::Expr;
use up_num::{encode_compact, DecimalType};
use up_workloads::datagen;

struct Workload {
    name: &'static str,
    expr: Expr,
    col_tys: Vec<DecimalType>,
}

fn workloads() -> Vec<Workload> {
    let col = |i: usize, ty: DecimalType, n: &str| Expr::col(i, ty, n);
    let mut out = Vec::new();

    // fig08 shape: three-column sum at LEN 2.
    let p2 = precision_for_len(2);
    let t2 = DecimalType::new_unchecked(p2 - 2, 2);
    out.push(Workload {
        name: "fig08_len2_add3",
        expr: col(0, t2, "c1").add(col(1, t2, "c2")).add(col(2, t2, "c3")),
        col_tys: vec![t2, t2, t2],
    });

    // fig13 shapes: single-operator kernels at LEN 8 and LEN 16.
    for &len in &[8usize, 16] {
        let p = precision_for_len(len);
        let t_add = DecimalType::new_unchecked(p - 1, 2);
        let t_mul = DecimalType::new_unchecked((p / 2).max(5), 2);
        out.push(Workload {
            name: match len {
                8 => "fig13_len8_add",
                _ => "fig13_len16_add",
            },
            expr: col(0, t_add, "a").add(col(1, t_add, "b")),
            col_tys: vec![t_add, t_add],
        });
        out.push(Workload {
            name: match len {
                8 => "fig13_len8_mul",
                _ => "fig13_len16_mul",
            },
            expr: col(0, t_mul, "a").mul(col(1, t_mul, "b")),
            col_tys: vec![t_mul, t_mul],
        });
    }

    // fig10 shape: byte-dense codec cells. Mismatched scales force the
    // §III-D alignment codec, so the generated kernels are long runs of
    // byte loads/stores at lane-affine addresses — the cells that measure
    // the compiled tier's warp-wide mem-thunk fast path.
    for &len in &[8usize, 16] {
        let p = precision_for_len(len);
        let t_a = DecimalType::new_unchecked(p - 1, 1);
        let t_b = DecimalType::new_unchecked(p - 1, 6);
        out.push(Workload {
            name: match len {
                8 => "codec_align_len8",
                _ => "codec_align_len16",
            },
            expr: col(0, t_a, "a").add(col(1, t_b, "b")),
            col_tys: vec![t_a, t_b],
        });
    }
    out
}

struct ModeResult {
    backend: &'static str,
    mode: String,
    wall_s: f64,
    tuples_per_s: f64,
    speedup: f64,
    identical: bool,
}

fn assert_identical(
    name: &str,
    mode: &str,
    serial: (&ExecStats, &[Vec<u8>], f64),
    run: (&ExecStats, &[Vec<u8>], f64),
) -> bool {
    let (s_stats, s_bufs, s_time) = serial;
    let (stats, bufs, time) = run;
    let ok = s_stats == stats && s_bufs == bufs && s_time.to_bits() == time.to_bits();
    assert!(
        ok,
        "{name}/{mode}: parallel run diverged from serial \
         (stats match: {}, bytes match: {}, modeled time bits match: {})",
        s_stats == stats,
        s_bufs == bufs,
        s_time.to_bits() == time.to_bits()
    );
    ok
}

fn main() {
    let opts = HarnessOpts::from_args(200_000);
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/BENCH_simspeed.json".to_string());
    let assert_tiering = args.iter().any(|a| a == "--assert-tiering");
    let n = opts.sim_tuples;
    let reps = if opts.quick { 1 } else { 3 };
    let device = DeviceConfig::a6000();
    let host = auto_threads();
    let mut thread_counts: Vec<usize> = [2usize, 4, 8]
        .into_iter()
        .filter(|&t| t <= host.max(8))
        .collect();
    thread_counts.dedup();

    println!(
        "bench_simspeed: {n} tuples/run, {reps} rep(s), host threads {host}\n"
    );

    let mut json_entries: Vec<String> = Vec::new();
    // (workload, decoded serial tps, compiled serial tps) for the hot
    // carry-chain cells the CI guard checks.
    let mut tier_cells: Vec<(String, f64, f64)> = Vec::new();
    for w in workloads() {
        let jit = JitEngine::with_defaults();
        let (compiled, _) = jit.compile(&w.expr);
        let Compiled::Kernel(k) = compiled else { panic!("{}: folded away", w.name) };

        // Encode the input columns once; every run clones this memory.
        let mut base = GlobalMem::new();
        for (slot, ty) in w.col_tys.iter().enumerate() {
            let col = datagen::random_decimal_column(n, *ty, 2, true, 11 + slot as u64);
            let mut bytes = Vec::with_capacity(n * ty.lb());
            for v in &col {
                bytes.extend(encode_compact(v, *ty).expect("fits declared type"));
            }
            base.add_buffer(bytes);
        }
        let out_buf = base.alloc(n * k.out_ty.lb());
        let cfg = LaunchConfig::for_tuples(n as u64, 256, &device);

        // Timed run: best-of-reps wall clock, plus the artifacts needed
        // for the determinism check.
        let run = |backend: ExecBackend,
                   par: SimParallelism|
         -> (ExecStats, Vec<Vec<u8>>, f64, f64) {
            let mut best = f64::INFINITY;
            let mut kept = None;
            for _ in 0..reps {
                let mut mem = base.clone();
                let t0 = Instant::now();
                let stats = launch_opts(&k.kernel, cfg, &device, &mut mem, &[n as u32], LaunchOpts {
                    par,
                    backend,
                    auto_serial_below: None,
                })
                .expect("launch");
                let wall = t0.elapsed().as_secs_f64();
                if wall < best {
                    best = wall;
                    let bufs = vec![mem.buffer(out_buf).to_vec()];
                    let time = kernel_time(&k.kernel, &stats, &device).total_s;
                    kept = Some((stats, bufs, time));
                }
            }
            let (stats, bufs, time) = kept.expect("at least one rep");
            (stats, bufs, time, best)
        };

        // Reference: the tree walker, serial — everything else must match
        // it to the bit.
        let (s_stats, s_bufs, s_time, s_wall) = run(ExecBackend::Tree, SimParallelism::Serial);
        let serial_tps = n as f64 / s_wall;
        println!(
            "{:<18} tree/serial         {:>9.3} ms  {:>12.0} tuples/s",
            w.name,
            s_wall * 1e3,
            serial_tps
        );
        let mut modes = vec![ModeResult {
            backend: "tree",
            mode: "serial".into(),
            wall_s: s_wall,
            tuples_per_s: serial_tps,
            speedup: 1.0,
            identical: true,
        }];

        let mut serial_tps_by_backend: Vec<(&'static str, f64)> = Vec::new();
        for backend in [
            ExecBackend::Tree,
            ExecBackend::Decoded,
            ExecBackend::Compiled,
            ExecBackend::Auto,
        ] {
            let sweep: Vec<SimParallelism> = std::iter::once(SimParallelism::Serial)
                .chain(std::iter::once(SimParallelism::Threads(1)))
                .chain(thread_counts.iter().map(|&t| SimParallelism::Threads(t as u32)))
                .chain(std::iter::once(SimParallelism::Auto))
                .collect();
            for par in sweep {
                if backend == ExecBackend::Tree && par == SimParallelism::Serial {
                    continue; // the reference above
                }
                let backend_name = match backend {
                    ExecBackend::Tree => "tree",
                    ExecBackend::Decoded => "decoded",
                    ExecBackend::Compiled => "compiled",
                    ExecBackend::Auto => "auto",
                };
                let label = format!("{backend_name}/{par}");
                let (stats, bufs, time, wall) = run(backend, par);
                let identical = assert_identical(
                    w.name,
                    &label,
                    (&s_stats, &s_bufs, s_time),
                    (&stats, &bufs, time),
                );
                let tps = n as f64 / wall;
                println!(
                    "{:<18} {:<19} {:>9.3} ms  {:>12.0} tuples/s  {:>5.2}x",
                    "",
                    label,
                    wall * 1e3,
                    tps,
                    s_wall / wall
                );
                if par == SimParallelism::Serial {
                    serial_tps_by_backend.push((backend_name, tps));
                }
                modes.push(ModeResult {
                    backend: backend_name,
                    mode: par.to_string(),
                    wall_s: wall,
                    tuples_per_s: tps,
                    speedup: s_wall / wall,
                    identical,
                });
            }
        }
        if w.name.contains("mul") || w.name.starts_with("codec_") {
            let tps_of = |b: &str| {
                serial_tps_by_backend
                    .iter()
                    .find(|(name, _)| *name == b)
                    .map(|&(_, t)| t)
                    .expect("serial cell present")
            };
            tier_cells.push((w.name.to_string(), tps_of("decoded"), tps_of("compiled")));
        }
        println!();

        let mode_json: Vec<String> = modes
            .iter()
            .map(|m| {
                format!(
                    "{{\"backend\":\"{}\",\"mode\":\"{}\",\"wall_s\":{:.6},\
                     \"tuples_per_s\":{:.1},\"speedup_vs_serial\":{:.3},\
                     \"identical_to_serial\":{}}}",
                    m.backend, m.mode, m.wall_s, m.tuples_per_s, m.speedup, m.identical
                )
            })
            .collect();
        json_entries.push(format!(
            "{{\"workload\":\"{}\",\"tuples\":{},\"modes\":[{}]}}",
            w.name,
            n,
            mode_json.join(",")
        ));
    }

    let json = format!(
        "{{\"bench\":\"simspeed\",\"schema\":\"backend-x-parallelism-v4\",\
         \"host_threads\":{},\"quick\":{},\
         \"tuples_per_run\":{},\"reps\":{},\"tier_threshold\":{},\"workloads\":[{}]}}\n",
        host,
        opts.quick,
        n,
        reps,
        up_gpusim::tier_threshold(),
        json_entries.join(",")
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(&out_path, &json).expect("write BENCH_simspeed.json");
    println!("wrote {out_path}");

    // The tier-promotion payoff summary (and CI guard): the closure tier
    // must not lose to the interpreter it was promoted from on the hot
    // carry-chain and byte-codec kernels.
    let mut tier_ok = true;
    for (name, decoded, compiled) in &tier_cells {
        let ratio = compiled / decoded;
        println!(
            "tiering {name}: compiled/serial {ratio:.2}x decoded/serial{}",
            if ratio < 1.0 { "  << REGRESSION" } else { "" }
        );
        tier_ok &= ratio >= 1.0;
    }
    if assert_tiering {
        assert!(tier_ok, "compiled tier lost to decoded on a hot carry-chain or codec cell");
        println!("tiering assertion passed");
    }
}
