//! Figure 14(a) — Query 3: `SELECT SUM(c1) FROM R3` with (p, s) ∈
//! {(11,7), (29,11), (65,31), (137,51), (281,101)} so the aggregation
//! results occupy 2/4/8/16/32 words; TPI = 8 for the multi-threaded
//! aggregation (§IV-C2).
//!
//! Expected shape: MonetDB fastest at LEN ≤ 4 (no disk I/O); HEAVY.AI
//! completes only LEN 2 and is the slowest there; UltraPrecise beats
//! RateupDB by ~33%/12% at LEN 2/4; PostgreSQL needs ~112%/67%/29% more
//! time at LEN 8/16/32.

use up_bench::{print_header, print_row, runner, HarnessOpts};
use up_engine::Profile;
use up_num::DecimalType;

fn main() {
    let opts = HarnessOpts::from_args(8_000);
    println!(
        "Figure 14(a): SELECT SUM(c1) FROM R3 — {} tuples scaled to {} (TPI = 8)\n",
        opts.sim_tuples, opts.report_tuples
    );

    let systems = [
        Profile::HeavyAiLike,
        Profile::RateupLike,
        Profile::MonetLike,
        Profile::PostgresLike,
        Profile::UltraPrecise,
    ];
    // The paper's (p, s) pairs; with 10M tuples SUM adds 7 digits, giving
    // 18/36/72/144/288 → LEN 2/4/8/16/32.
    let series: [(u32, u32); 5] = [(11, 7), (29, 11), (65, 31), (137, 51), (281, 101)];

    let widths = [13usize, 14, 14, 14, 14, 14];
    print_header(
        &["system", "(11,7)→L2", "(29,11)→L4", "(65,31)→L8", "(137,51)→L16", "(281,101)→L32"],
        &widths,
    );
    let mut rows: Vec<Vec<String>> =
        systems.iter().map(|p| vec![p.name().to_string()]).collect();
    for (p, s) in series {
        let ty = DecimalType::new_unchecked(p, s);
        let cols = [("c1", ty)];
        let outcomes = runner::sweep(
            &systems,
            |prof| runner::decimal_db(prof, "r3", &cols, opts.sim_tuples, 2, p as u64),
            "SELECT SUM(c1) FROM r3",
            opts.scale(),
            false,
        );
        for (row, o) in rows.iter_mut().zip(&outcomes) {
            row.push(match &o.result {
                Ok(m) => up_bench::fmt_time(m.total()),
                Err(_) => "✗".to_string(),
            });
        }
    }
    for row in &rows {
        print_row(row, &widths);
    }
    println!(
        "\nThe SUM result type widens by ceil(log₁₀ N) digits (§III-B3), which is \
         what pushes HEAVY.AI out beyond LEN 2 and MonetDB/RateupDB beyond LEN 4. \
         UltraPrecise aggregates in §III-E2 multi-pass rounds with nt = ⌊S/(Ng(4Lw+1))⌋."
    );
}
