//! §IV-A profiling study — the Nsight Compute numbers: SM utilization
//! and warp occupancy of the `a + b` and `a × b` kernels at LEN 8 vs 32.
//!
//! Expected shape (paper): additions at LEN 8 run at 100% occupancy but
//! only 4.14% SM utilization (memory-bound); at LEN 32 occupancy falls to
//! 50% and utilization to 2.31%. Multiplications go from 100%/3.70% to
//! 33%/3.23%.

use up_bench::{kernels, precision_for_len, print_header, print_row, HarnessOpts};
use up_gpusim::profiler::KernelProfile;
use up_jit::cache::JitOptions;
use up_jit::Expr;
use up_num::DecimalType;
use up_workloads::datagen;

fn main() {
    let opts = HarnessOpts::from_args(4_000);
    println!("§IV-A kernel profile (Nsight-style) at {} tuples\n", opts.report_tuples);

    let widths = [10usize, 6, 11, 10, 9, 12];
    print_header(&["kernel", "LEN", "occupancy", "SM util", "regs", "DRAM MB"], &widths);
    for (op, label) in [(false, "a + b"), (true, "a × b")] {
        for len in [2usize, 4, 8, 16, 32] {
            let result_p = precision_for_len(len);
            let col_p = if op { (result_p / 2).max(5) } else { result_p - 1 };
            let ty = DecimalType::new_unchecked(col_p, 2);
            let a = Expr::col(0, ty, "a");
            let b = Expr::col(1, ty, "b");
            let e = if op { a.mul(b) } else { a.add(b) };
            let cols = vec![
                datagen::random_decimal_column(opts.sim_tuples, ty, 2, true, 50 + len as u64),
                datagen::random_decimal_column(opts.sim_tuples, ty, 2, true, 60 + len as u64),
            ];
            let run =
                kernels::run_expr(&e, &cols, JitOptions::none(), opts.report_tuples).expect("kernel");
            let profile = KernelProfile {
                name: format!("{label} LEN{len}"),
                occupancy: run.time.occupancy,
                sm_utilization: run.time.sm_utilization,
                warp_issues: run.stats.warp_issues,
                mem_transactions: run.stats.mem_transactions,
                dram_bytes: run.stats.dram_bytes,
                divergent_branches: run.stats.divergent_branches,
                regs_per_thread: run.hw_regs,
                lowered_superblocks: 0,
                fallback_superblocks: 0,
                lowered_mem_thunks: 0,
                fallback_interp_insts: 0,
            };
            print_row(
                &[
                    label.to_string(),
                    format!("{len}"),
                    format!("{:.0}%", profile.occupancy * 100.0),
                    format!("{:.2}%", profile.sm_utilization * 100.0),
                    format!("{}", profile.regs_per_thread),
                    format!("{:.1}", profile.dram_bytes as f64 / 1e6),
                ],
                &widths,
            );
        }
    }
    println!(
        "\nReading: simple decimal arithmetic is memory-bound — occupancy is high \
         but the compute pipes idle (the paper's 4.14%/2.31% story), and register \
         pressure halves occupancy at LEN 32. This is why the compact representation \
         pays: fewer bytes moved is time saved."
    );
}
