//! Figure 12 — constant pre-calculation: compile-time evaluation of
//! constant-only sub-expressions (§III-D2) on three kernels:
//!
//! * `1 + a + 2 + 11`  → `14 + a`   (3 additions → 1; paper saves ≤62.55%)
//! * `1 + a + 2 − 3`   → `a`        (no kernel generated at all; 100%)
//! * `0.25 × (a+b) × 4` → `a + b`   (2 muls + 1 add → 1 add; ≤62.50%)

use up_bench::{fmt_time, kernels, precision_for_len, print_header, print_row, HarnessOpts, LEN_SERIES};
use up_jit::cache::JitOptions;
use up_jit::Expr;
use up_num::DecimalType;
use up_workloads::datagen;

fn main() {
    let opts = HarnessOpts::from_args(4_000);
    println!(
        "Figure 12: constant pre-calculation — kernel time at {} tuples\n",
        opts.report_tuples
    );

    let on = JitOptions { schedule_alignment: false, fold_constants: true, prealign_constants: true };
    let off = JitOptions::none();

    type ExprBuilder = Box<dyn Fn(DecimalType) -> Expr>;
    let exprs: [(&str, ExprBuilder); 3] = [
        (
            "1 + a + 2 + 11",
            Box::new(|t| {
                Expr::lit("1").unwrap()
                    .add(Expr::col(0, t, "a"))
                    .add(Expr::lit("2").unwrap())
                    .add(Expr::lit("11").unwrap())
            }),
        ),
        (
            "1 + a + 2 - 3",
            Box::new(|t| {
                Expr::lit("1").unwrap()
                    .add(Expr::col(0, t, "a"))
                    .add(Expr::lit("2").unwrap())
                    .sub(Expr::lit("3").unwrap())
            }),
        ),
        (
            "0.25 * (a + b) * 4",
            Box::new(|t| {
                Expr::lit("0.25").unwrap()
                    .mul(Expr::col(0, t, "a").add(Expr::col(1, t, "b")))
                    .mul(Expr::lit("4").unwrap())
            }),
        ),
    ];

    for (label, make) in &exprs {
        println!("expression: {label}");
        let widths = [7usize, 14, 14, 10];
        print_header(&["LEN", "unoptimized", "optimized", "saving"], &widths);
        for &len in &LEN_SERIES {
            let result_p = precision_for_len(len);
            let a_ty = DecimalType::new_unchecked(result_p.saturating_sub(14).max(12), 10);
            let e = make(a_ty);
            let cols = vec![
                datagen::random_decimal_column(opts.sim_tuples, a_ty, 3, true, 10 + len as u64),
                datagen::random_decimal_column(opts.sim_tuples, a_ty, 3, true, 20 + len as u64),
            ];
            let t_off = kernels::run_expr(&e, &cols, off, opts.report_tuples)
                .expect("unoptimized kernel")
                .time
                .total_s;
            let t_on = match kernels::run_expr(&e, &cols, on, opts.report_tuples) {
                Some(run) => run.time.total_s,
                // Folded to a bare column: no kernel at all (the paper's
                // 100% saving) — only an in-place copy would remain.
                None => 0.0,
            };
            let saving = 1.0 - t_on / t_off;
            print_row(
                &[
                    format!("{len}"),
                    fmt_time(t_off),
                    if t_on == 0.0 { "no kernel".to_string() } else { fmt_time(t_on) },
                    format!("{:.2}%", saving * 100.0),
                ],
                &widths,
            );
        }
        println!();
    }
    println!("Paper reference savings: up to 62.55%, 100.00%, 62.50% respectively.");
}
