//! Table II — the DECIMAL precision envelope of the surveyed databases,
//! plus live capability probes showing where each evaluated profile
//! actually stops in this reproduction.

use up_baselines::registry::{PRECISION_LIMITS, NO_LIMIT};
use up_bench::print_header;
use up_engine::{ColumnType, Database, Profile, Schema, Value};
use up_num::{DecimalType, UpDecimal};

fn main() {
    println!("Table II: maximum DECIMAL (p, s) per database\n");
    let widths = [16usize, 24, 28];
    print_header(&["database", "max (p, s)", "note"], &widths);
    for l in PRECISION_LIMITS {
        let ps = if l.note == Some("double and string") {
            "—".to_string()
        } else if l.max_precision == NO_LIMIT {
            "no limit".to_string()
        } else {
            format!("({}, {})", l.max_precision, l.max_scale)
        };
        println!(
            "{:>16}  {:>24}  {:>28}",
            l.database,
            ps,
            l.note.unwrap_or("")
        );
    }

    println!("\nLive capability probes (3-term addition at the declared precision):");
    let probes = [
        Profile::HeavyAiLike,
        Profile::RateupLike,
        Profile::MonetLike,
        Profile::PostgresLike,
        Profile::UltraPrecise,
    ];
    for profile in probes {
        let mut highest_ok = 0u32;
        for p in [9u32, 16, 18, 34, 36, 38, 76, 153, 307, 1000] {
            let ty = DecimalType::new_unchecked(p, 2);
            let mut db = Database::new(profile);
            db.create_table("t", Schema::new(vec![("c", ColumnType::Decimal(ty))]));
            let v = UpDecimal::from_scaled_i64(12_345, ty).expect("small value fits");
            db.insert("t", vec![Value::Decimal(v)]).unwrap();
            if db.query("SELECT c + c + c FROM t").is_ok() {
                highest_ok = p;
            }
        }
        println!(
            "  {:<13} completes the probe up to column precision {}",
            profile.name(),
            if highest_ok >= 1000 { "≥1000 (unbounded)".to_string() } else { highest_ok.to_string() }
        );
    }
}
