//! Figure 1 — the motivating experiment: `SELECT SUM(c1+c2) FROM R` over
//! 10M tuples on PostgreSQL, CockroachDB, and UltraPrecise with
//! (1) DOUBLE columns, (2) low-precision DECIMAL(17,5)+DECIMAL(14,2),
//! (3) high-precision DECIMAL(35,5)+DECIMAL(32,2).
//!
//! Reproduces both findings: DOUBLE is fast but **wrong and inconsistent
//! across engines**, DECIMAL is exact but costs more — except on the GPU,
//! where low-precision DECIMAL is nearly free (the paper measures 1.04×).

use up_bench::{fmt_time, print_header, print_row, runner, scale_modeled, HarnessOpts};
use up_baselines::f64col::{sum_f64, to_f64_column, SumOrder};
use up_engine::{ModeledTime, Profile, Value};
use up_num::{BigInt, DecimalType, UpDecimal};
use up_workloads::datagen;

fn main() {
    let opts = HarnessOpts::from_args(20_000);
    let n = opts.sim_tuples;
    println!(
        "Figure 1: SELECT SUM(c1+c2) FROM R — {} simulated tuples scaled to {}\n",
        n, opts.report_tuples
    );

    let low = [
        ("c1", DecimalType::new_unchecked(17, 5)),
        ("c2", DecimalType::new_unchecked(14, 2)),
    ];
    let high = [
        ("c1", DecimalType::new_unchecked(35, 5)),
        ("c2", DecimalType::new_unchecked(32, 2)),
    ];
    let systems = [Profile::PostgresLike, Profile::CockroachLike, Profile::UltraPrecise];

    let widths = [13usize, 14, 14, 14];
    print_header(&["system", "DOUBLE", "low-p", "high-p"], &widths);
    for &sys in &systems {
        let mut cells = vec![sys.name().to_string()];
        for (cols, as_double) in [(&low, true), (&low, false), (&high, false)] {
            let profile = if as_double { Profile::DoubleF64 } else { sys };
            // DOUBLE timing uses the host system's executor constants but
            // the f64 arithmetic path; UltraPrecise's DOUBLE run models
            // the same GPU scan/transfer with 8-byte values.
            let db = runner::decimal_db(profile, "r", cols, n, 3, 42);
            let time: Result<ModeledTime, String> = db
                .query("SELECT SUM(c1 + c2) FROM r")
                .map(|r| scale_modeled(&r.modeled, opts.scale()))
                .map_err(|e| e.to_string());
            let time = match (as_double, sys, time) {
                // The paper's GPU DOUBLE run is the GPU low-p run minus the
                // decimal expansion: model it as the decimal kernel with
                // 8-byte traffic (≈ the same shape, slightly faster).
                (true, Profile::UltraPrecise, Ok(m)) => {
                    Ok(ModeledTime { cpu_s: 0.0, kernel_s: m.kernel_s, ..m })
                }
                (_, _, t) => t,
            };
            cells.push(match time {
                Ok(m) => fmt_time(m.total()),
                Err(e) => e,
            });
        }
        print_row(&cells, &widths);
    }

    // Correctness story: exact vs double sums on the low-p data.
    println!("\nCorrectness of SUM(c1+c2) on the low-precision data:");
    let c1 = datagen::random_decimal_column(n, low[0].1, 3, true, 42);
    let c2 = datagen::random_decimal_column(n, low[1].1, 3, true, 43);
    let out_ty = low[0].1.add_result(&low[1].1).sum_result(n as u64);
    let mut exact = BigInt::zero();
    for (a, b) in c1.iter().zip(&c2) {
        exact = exact.add(&a.add(b).align_up(out_ty.scale));
    }
    let exact = UpDecimal::from_parts_unchecked(exact, out_ty);
    let doubles: Vec<f64> = to_f64_column(&c1)
        .iter()
        .zip(to_f64_column(&c2))
        .map(|(a, b)| a + b)
        .collect();
    let pg_double = sum_f64(&doubles, SumOrder::Sequential);
    let crdb_double = sum_f64(&doubles, SumOrder::Pairwise);
    println!("  exact DECIMAL : {exact}");
    println!("  PostgreSQL-style DOUBLE (sequential) : {pg_double:.5}");
    println!("  CockroachDB-style DOUBLE (pairwise)  : {crdb_double:.5}");
    println!(
        "  → DOUBLE errs by {:.3e} and the two engines disagree by {:.3e} — \
         \"the results are incorrect\" and \"inconsistent\" (§I)",
        (pg_double - exact.to_f64()).abs(),
        (pg_double - crdb_double).abs()
    );

    // Also demonstrate the UltraPrecise query returns the exact value.
    let up = runner::decimal_db(Profile::UltraPrecise, "r", &low, n, 3, 42);
    let r = up.query("SELECT SUM(c1 + c2) FROM r").unwrap();
    let Value::Decimal(got) = &r.rows[0][0] else { panic!("decimal sum") };
    assert_eq!(got.cmp_value(&exact), core::cmp::Ordering::Equal);
    println!("  UltraPrecise SQL result matches the exact sum digit for digit ✓");
}
