//! Figure 11 — constant construction: the kernel for `1 + a` (a at scale
//! 10) with the constant converted to DECIMAL at compile time and
//! pre-aligned to scale 10 (§III-D2) versus converting/aligning it per
//! tuple in the kernel.
//!
//! Expected shape: speedups of roughly 1.33×/1.25×/1.14×/1.14×/1.11× as
//! LEN grows from 2 to 32 — the alignment multiply being amortized by the
//! growing bulk of the wide addition.

use up_bench::{fmt_time, kernels, precision_for_len, print_header, print_row, HarnessOpts, LEN_SERIES};
use up_jit::cache::JitOptions;
use up_jit::Expr;
use up_num::DecimalType;
use up_workloads::datagen;

fn main() {
    let opts = HarnessOpts::from_args(4_000);
    println!(
        "Figure 11: constant construction — 1 + a, kernel time at {} tuples\n",
        opts.report_tuples
    );

    let on = JitOptions { schedule_alignment: false, fold_constants: true, prealign_constants: true };
    let off = JitOptions::none();

    let widths = [7usize, 14, 14, 9, 13, 13];
    print_header(
        &["LEN", "runtime-conv", "compile-time", "speedup", "insts/warp", "insts/warp*"],
        &widths,
    );
    for &len in &LEN_SERIES {
        let result_p = precision_for_len(len);
        let a_ty = DecimalType::new_unchecked(result_p.saturating_sub(12).max(12), 10);
        let e = Expr::lit("1").unwrap().add(Expr::col(0, a_ty, "a"));
        let cols = vec![datagen::random_decimal_column(opts.sim_tuples, a_ty, 3, true, len as u64)];
        let run_off = kernels::run_expr(&e, &cols, off, opts.report_tuples).expect("kernel");
        let run_on = kernels::run_expr(&e, &cols, on, opts.report_tuples).expect("kernel");
        print_row(
            &[
                format!("{len}"),
                fmt_time(run_off.time.total_s),
                fmt_time(run_on.time.total_s),
                format!("{:.2}×", run_off.time.total_s / run_on.time.total_s),
                format!("{}", run_off.stats.warp_issues / run_off.stats.warps.max(1)),
                format!("{}", run_on.stats.warp_issues / run_on.stats.warps.max(1)),
            ],
            &widths,
        );
    }
    println!("
(insts/warp = dynamic warp issues without the optimization; * = with.)");
    println!("Deviation note: in our roofline this kernel stays DRAM-bound at every");
    println!("LEN, so the instruction savings (columns 5 vs 6) do not move total time;");
    println!("the paper's 1.11–1.33× implies its kernels were issue-bound. See");
    println!("EXPERIMENTS.md for the discussion.");
    println!("\nWith the optimization the constant is a pre-aligned immediate: the");
    println!("kernel performs a same-scale addition with no per-tuple ×10¹⁰ multiply.");
    println!("Paper reference: 1.33×, 1.25×, 1.14×, 1.14×, 1.11× for LEN 2…32.");
}
