//! Figure 14(c) — RSA encryption in SQL (Query 4): `SELECT c1 * c1 % N *
//! c1 % N FROM R4` with message precisions 17/35/71/143 (modulus LEN
//! 4/8/16/32). Scan time is **included** for all systems (§IV-D3).
//!
//! Expected shape: UltraPrecise flattest across LEN (574 ms → 1019 ms in
//! the paper); MonetDB/RateupDB complete only LEN 4; HEAVY.AI fails
//! outright (no decimal modulo); PostgreSQL falls behind by 22× at LEN 4
//! up to 248× at LEN 32, with H2 and CockroachDB behind PostgreSQL.

use up_bench::{print_header, print_row, HarnessOpts};
use up_engine::{ColumnType, Database, Profile, Schema, Value};
use up_workloads::rsa;

fn main() {
    let opts = HarnessOpts::from_args(2_000);
    println!(
        "Figure 14(c): Query 4 (RSA, e = 3) — {} messages scaled to {}\n",
        opts.sim_tuples, opts.report_tuples
    );

    let systems = [
        Profile::HeavyAiLike,
        Profile::RateupLike,
        Profile::MonetLike,
        Profile::PostgresLike,
        Profile::H2Like,
        Profile::CockroachLike,
        Profile::UltraPrecise,
    ];

    let widths = [13usize, 14, 14, 14, 14];
    print_header(&["system", "LEN=4 (p17)", "LEN=8 (p35)", "LEN=16 (p71)", "LEN=32 (p143)"], &widths);
    let mut rows: Vec<Vec<String>> =
        systems.iter().map(|p| vec![p.name().to_string()]).collect();

    for &mp in &rsa::MESSAGE_PRECISIONS {
        let w = rsa::build(mp, opts.sim_tuples, 0xF14C + mp as u64);
        let sql = rsa::query4_sql(&w.key.n);
        for (row, &sys) in rows.iter_mut().zip(&systems) {
            let mut db = Database::new(sys);
            db.create_table("r4", Schema::new(vec![("c1", ColumnType::Decimal(w.msg_ty))]));
            for m in &w.messages {
                db.insert("r4", vec![Value::Decimal(m.clone())]).unwrap();
            }
            row.push(match db.query(&sql) {
                Ok(r) => {
                    let m = up_bench::scale_modeled(&r.modeled, opts.scale());
                    up_bench::fmt_time(m.total())
                }
                Err(_) => "✗".to_string(),
            });
        }
    }
    for row in &rows {
        print_row(row, &widths);
    }
    println!(
        "\n✗ for HEAVY.AI everywhere — it \"does not support the modulo operator of \
         the decimal type\" (§IV-D3); MonetDB/RateupDB overflow their word widths past \
         LEN 4 (c1² needs 2× the message precision). Keys are genuine Miller–Rabin \
         semiprimes; ciphertexts are verified against X³ mod N in the test suite."
    );
}
