//! Figure 13 — multi-threading arithmetic: kernel time of `a + b`,
//! `a × b`, and `a ÷ b` at TPI ∈ {1, 4, 8, 16, 32} across the LEN
//! series (§IV-C1).
//!
//! Expected shape: at low LEN single- and multi-threading are comparable;
//! at LEN 32 the 8-thread groups roughly halve the single-thread time
//! (49.67 ms → 23.67 ms for additions in the paper) thanks to coalesced
//! accesses and split work. Division uses Newton–Raphson in the groups
//! and the §III-C2 binary search single-threaded; the CGBN restriction
//! `LEN/TPI ≤ TPI` leaves the (TPI=4, LEN=32) cell empty, exactly as the
//! paper's plot.

use up_bench::{fmt_time, precision_for_len, print_header, print_row, HarnessOpts, LEN_SERIES};
use up_gpusim::cgbn::{self, GroupOp, Tpi, TPI_VALUES};
use up_gpusim::cost::kernel_time;
use up_gpusim::{DeviceConfig, KernelBuilder};
use up_num::{DecimalType, UpDecimal};
use up_workloads::datagen;

fn main() {
    let opts = HarnessOpts::from_args(2_000);
    let device = DeviceConfig::a6000();
    println!(
        "Figure 13: TPI sweep over single arithmetic operators at {} instances\n",
        opts.report_tuples
    );

    for (op, label) in [
        (GroupOp::Add, "a + b"),
        (GroupOp::Mul, "a × b"),
        (GroupOp::Div, "a ÷ b"),
    ] {
        println!("operator: {label}");
        let widths = [7usize, 12, 12, 12, 12, 12];
        print_header(&["LEN", "TPI=1", "TPI=4", "TPI=8", "TPI=16", "TPI=32"], &widths);
        for &len in &LEN_SERIES {
            let result_p = precision_for_len(len);
            let col_p = match op {
                GroupOp::Mul => (result_p / 2).max(5),
                _ => result_p - 1,
            };
            let ty = DecimalType::new_unchecked(col_p, 2);
            // One representative operand pair drives the analytic model;
            // functional equivalence across TPI is covered by tests.
            let a = datagen::random_decimal_column(4, ty, 2, true, 70 + len as u64);
            let b = datagen::random_decimal_column(4, ty, 2, false, 80 + len as u64);

            let mut cells = vec![format!("{len}")];
            for &tpi in &TPI_VALUES {
                let tpi = Tpi(tpi);
                let cell = if op == GroupOp::Div && tpi.0 == 1 {
                    // Single-threaded division is the §III-C2 binary
                    // search, not CGBN.
                    let cost = cgbn::single_thread_div_cost(ty, ty);
                    let stats = cgbn::op_stats(&cost, opts.report_tuples, tpi, &device);
                    let k = KernelBuilder::new()
                        .finish("div_bs", cgbn::group_hw_regs(len, tpi));
                    fmt_time(kernel_time(&k, &stats, &device).total_s)
                } else {
                    match run_op(op, &a[0], &b[0], tpi, opts.report_tuples, &device, len) {
                        Some(t) => fmt_time(t),
                        None => "—".to_string(),
                    }
                };
                cells.push(cell);
            }
            print_row(&cells, &widths);
        }
        println!();
    }
    println!(
        "— : the CGBN Newton–Raphson restriction LEN/TPI ≤ TPI (no data presented, \
         matching the paper). Shapes to check: flat rows at low LEN; ~2× gains from \
         8-thread groups at LEN 32; division orders of magnitude above add/mul."
    );
}

fn run_op(
    op: GroupOp,
    a: &UpDecimal,
    b: &UpDecimal,
    tpi: Tpi,
    n: u64,
    device: &DeviceConfig,
    len: usize,
) -> Option<f64> {
    let (_, cost) = cgbn::group_eval(op, a, b, tpi).ok()?;
    let stats = cgbn::op_stats(&cost, n, tpi, device);
    let k = KernelBuilder::new().finish("grp", cgbn::group_hw_regs(len, tpi));
    Some(kernel_time(&k, &stats, device).total_s)
}
