//! Figure 9 — Query 2: `SELECT c1+c2+c3+c4, c5+c6+c7+c8 FROM R2` — a
//! more computation-intensive two-expression query. c1–c4 stay at
//! DECIMAL(6,2) (the first result always fits one word); c5–c8 widen with
//! the LEN series. Two GPU kernels are generated (§IV-A).
//!
//! Expected shape: UltraPrecise fastest in all cases; the GPU baselines
//! beat MonetDB ("more advantageous in computation-intensive workloads");
//! PostgreSQL slowest, up to ~8× behind.

use up_bench::{precision_for_len, print_header, print_row, runner, HarnessOpts, LEN_SERIES};
use up_engine::Profile;
use up_num::DecimalType;

fn main() {
    let opts = HarnessOpts::from_args(8_000);
    println!(
        "Figure 9: SELECT c1+c2+c3+c4, c5+c6+c7+c8 FROM R2 — {} tuples scaled to {}\n",
        opts.sim_tuples, opts.report_tuples
    );

    let systems = [
        Profile::HeavyAiLike,
        Profile::RateupLike,
        Profile::MonetLike,
        Profile::PostgresLike,
        Profile::UltraPrecise,
    ];
    let widths = [13usize, 14, 14, 14, 14, 14];
    print_header(&["system", "LEN=2", "LEN=4", "LEN=8", "LEN=16", "LEN=32"], &widths);

    let mut rows: Vec<Vec<String>> =
        systems.iter().map(|p| vec![p.name().to_string()]).collect();
    for &len in &LEN_SERIES {
        // Four-term adds widen by 3 digits; size c5–c8 for the result.
        let result_p = precision_for_len(len);
        let wide = DecimalType::new_unchecked(result_p - 3, 2);
        let narrow = DecimalType::new_unchecked(6, 2);
        let cols = [
            ("c1", narrow), ("c2", narrow), ("c3", narrow), ("c4", narrow),
            ("c5", wide), ("c6", wide), ("c7", wide), ("c8", wide),
        ];
        let outcomes = runner::sweep(
            &systems,
            |p| runner::decimal_db(p, "r2", &cols, opts.sim_tuples, 1, 900 + len as u64),
            "SELECT c1 + c2 + c3 + c4, c5 + c6 + c7 + c8 FROM r2",
            opts.scale(),
            false,
        );
        for (row, o) in rows.iter_mut().zip(&outcomes) {
            row.push(match &o.result {
                Ok(m) => up_bench::fmt_time(m.total()),
                Err(_) => "✗".to_string(),
            });
        }
    }
    for row in &rows {
        print_row(row, &widths);
    }
    println!("\nTwo kernels per query (one per expression); the first stays at one word.");
}
