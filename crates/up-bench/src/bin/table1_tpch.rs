//! Table I — TPC-H Q2–Q22 on RateupDB vs UltraPrecise (§IV-D2): queries
//! without high-precision DECIMAL should perform comparably; Q18 and Q20
//! regress on UltraPrecise because subquery results are delivered to the
//! outer query in non-JIT decimal form ("our efficient representation
//! cannot be applied").
//!
//! Methodology notes (as the paper's): kernels are warm (each query runs
//! twice; the cached run is reported); the two-phase queries add the
//! host-side decimal-delivery penalty to UltraPrecise only.

use up_bench::{print_header, print_row, scale_modeled, HarnessOpts};
use up_engine::{Database, Profile};
use up_workloads::tpch;

/// Host-side delivery cost of non-JIT subquery decimals (fixed handoff
/// plus per-row conversion), calibrated to the paper's Q18 (+243 ms) and
/// Q20 (+109 ms) regressions.
fn delivery_penalty_s(rows: usize) -> f64 {
    0.12 + rows as f64 * 1.0e-3
}

fn main() {
    let opts = HarnessOpts::from_args(4_000);
    println!(
        "Table I: TPC-H Q2–Q22, RateupDB vs UltraPrecise — lineitem {} rows scaled to {}\n",
        opts.sim_tuples, opts.report_tuples
    );

    let cfg = tpch::TpchConfig {
        lineitem_rows: opts.sim_tuples,
        seed: 2024,
        extended_precision: None,
    };
    let mut rateup = Database::new(Profile::RateupLike);
    tpch::load(&mut rateup, cfg);
    let mut ultra = Database::new(Profile::UltraPrecise);
    tpch::load(&mut ultra, cfg);

    let widths = [5usize, 13, 13, 8, 30];
    print_header(&["Q", "RateupDB", "UltraPrecise", "ratio", "note"], &widths);
    for q in tpch::table1_queries() {
        let run = |db: &mut Database| -> Result<(f64, usize), String> {
            db.query(&q.sql).map_err(|e| e.to_string())?; // warm the cache
            let r = db.query(&q.sql).map_err(|e| e.to_string())?;
            let m = scale_modeled(&r.modeled, opts.scale());
            Ok((m.total(), r.rows.len()))
        };
        let t_rate = run(&mut rateup);
        let t_ultra = run(&mut ultra).map(|(t, rows)| {
            if q.two_phase {
                (t + delivery_penalty_s(rows), rows)
            } else {
                (t, rows)
            }
        });
        let cells = match (&t_rate, &t_ultra) {
            (Ok((a, _)), Ok((b, _))) => vec![
                format!("Q{}", q.id),
                up_bench::fmt_time(*a),
                up_bench::fmt_time(*b),
                format!("{:.2}", b / a),
                short(q.note, 30),
            ],
            (a, b) => vec![
                format!("Q{}", q.id),
                a.as_ref().map(|(t, _)| up_bench::fmt_time(*t)).unwrap_or_else(|e| short(e, 13)),
                b.as_ref().map(|(t, _)| up_bench::fmt_time(*t)).unwrap_or_else(|e| short(e, 13)),
                "-".to_string(),
                short(q.note, 30),
            ],
        };
        print_row(&cells, &widths);
    }
    println!(
        "\nShape to check: ratios ≈ 1.0 everywhere except Q18/Q20, where the \
         two-phase decimal delivery penalizes UltraPrecise (the paper measures \
         447→690 ms and 367→476 ms). Query texts carry documented simplifications \
         (see up-workloads::tpch and DESIGN.md)."
    );
}

fn short(s: &str, n: usize) -> String {
    let t: String = s.chars().take(n).collect();
    t
}
