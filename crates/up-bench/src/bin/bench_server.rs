//! `bench_server` — cold-cache server throughput: pipeline off vs
//! per-query pipelining vs the cross-query pipeline arena.
//!
//! N client sessions each submit a small batch of two-slot decimal
//! projections against one server, every session with its own kernel
//! signatures (a cold-cache compile storm — the worst case the arena is
//! built for). NVCC latency emulation is on, so each first-occurrence
//! compile costs its modeled 300+ ms on the host:
//!
//! - `off`: no pipelining — each worker compiles its query's kernels
//!   back to back.
//! - `per-query`: intra-query launch DAG (PR 3) — a query overlaps its
//!   *own* compiles, but queued queries start compiling only when a
//!   worker picks them up, and concurrency is capped by the pool size.
//! - `arena`: cross-query arena — every admitted query's compiles start
//!   at submit on the shared lane pool, so the whole storm overlaps
//!   regardless of worker count.
//!
//! Every mode's results are checked bit-identical to the `off`
//! reference (rows and modeled compile/kernel/PCIe/CPU seconds), and at
//! 8 sessions the arena must deliver ≥ 2x the cold-cache QPS of
//! per-query pipelining — the PR's acceptance bar.
//!
//! Usage: `bench_server [--quick] [--tuples N] [--out PATH]`.
//! Results land in `results/BENCH_server.json`.

use std::sync::Arc;
use std::time::Instant;
use up_bench::HarnessOpts;
use up_engine::{ColumnType, Database, Profile, QueryResult, Schema, Value};
use up_gpusim::par::auto_threads;
use up_gpusim::{DeviceConfig, PipelineMode, SimParallelism};
use up_jit::cache::JitEngine;
use up_num::DecimalType;
use up_server::{ServerConfig, UpServer};
use up_workloads::datagen;

const COLS: [&str; 4] = ["a", "b", "c", "d"];

/// Kernel signatures are structural over operand *types*, not column
/// names, so every column gets its own decimal type — that is what makes
/// each session's expressions compile to distinct kernels (a cold-cache
/// storm instead of one shared signature).
const COL_TYPES: [(u32, u32); 4] = [(40, 4), (38, 3), (36, 2), (34, 5)];

/// Two 2-slot queries per session, 4 kernel signatures per session, all
/// structurally distinct across sessions (disjoint column pairs and, for
/// the second group of eight, deeper expression shapes).
fn session_queries(i: usize) -> [String; 2] {
    let pairs: [(usize, usize); 8] =
        [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (0, 0), (1, 1)];
    let (u, v) = pairs[i % 8];
    let (u, v) = (COLS[u], COLS[v]);
    if (i / 8).is_multiple_of(2) {
        [
            format!("SELECT {u} * {v}, {u} + {v} FROM w"),
            format!("SELECT {u} * {u} + {v}, {u} - {v} * {v} FROM w"),
        ]
    } else {
        [
            format!("SELECT {u} * {v} * {v}, {u} + {v} + {u} FROM w"),
            format!("SELECT ({u} + {v}) * {v}, {u} * {u} - {v} FROM w"),
        ]
    }
}

fn fresh_server(n: usize, workers: usize, mode: &str) -> UpServer {
    let tys: Vec<DecimalType> =
        COL_TYPES.iter().map(|&(p, s)| DecimalType::new_unchecked(p, s)).collect();
    let mut jit = JitEngine::with_defaults();
    jit.set_nvcc_latency_emulation(true);
    let mut db = Database::with_config(Profile::UltraPrecise, DeviceConfig::a6000(), jit);
    // Keep the comparison about launch scheduling, not block execution.
    db.sim_par = SimParallelism::Serial;
    db.create_table(
        "w",
        Schema::new(
            COLS.iter()
                .zip(&tys)
                .map(|(&c, &t)| (c, ColumnType::Decimal(t)))
                .collect::<Vec<_>>(),
        ),
    );
    let cols: Vec<Vec<_>> = tys
        .iter()
        .enumerate()
        .map(|(k, &t)| datagen::random_decimal_column(n, t, 2, true, 40 + k as u64))
        .collect();
    db.insert_many(
        "w",
        (0..n).map(|r| cols.iter().map(|c| Value::Decimal(c[r].clone())).collect::<Vec<_>>()),
    )
    .expect("rows fit declared type");
    UpServer::with_database(
        ServerConfig {
            workers,
            queue_capacity: 256,
            arena: mode == "arena",
            compile_lanes: 32,
            pipeline: if mode == "off" { PipelineMode::Off } else { PipelineMode::On(4) },
            sim_par: SimParallelism::Serial,
            ..ServerConfig::default()
        },
        db,
    )
}

struct ModeRun {
    /// Results keyed `[session][query]`, for cross-mode identity checks.
    results: Vec<Vec<QueryResult>>,
    wall_s: f64,
    qps: f64,
    p50_s: f64,
    p95_s: f64,
    compiles: u64,
}

/// One cold-cache storm: each session thread submits both its queries up
/// front (an async client), then collects them in order.
fn run_mode(mode: &str, sessions: usize, n: usize, reps: usize) -> ModeRun {
    let mut best: Option<ModeRun> = None;
    for _ in 0..reps {
        let server = Arc::new(fresh_server(n, 4, mode));
        let t0 = Instant::now();
        let handles: Vec<_> = (0..sessions)
            .map(|i| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    let s = server.connect(Profile::UltraPrecise);
                    let queries = session_queries(i);
                    let submitted = Instant::now();
                    let tickets: Vec<_> = queries
                        .iter()
                        .map(|q| server.submit(s, q).expect("admitted"))
                        .collect();
                    tickets
                        .into_iter()
                        .map(|t| {
                            let r = t.wait().expect("query ok");
                            (r, submitted.elapsed().as_secs_f64())
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut results = Vec::new();
        let mut latencies = Vec::new();
        for h in handles {
            let per_session = h.join().expect("client thread");
            let (rs, ls): (Vec<_>, Vec<_>) = per_session.into_iter().unzip();
            results.push(rs);
            latencies.extend(ls);
        }
        let wall_s = t0.elapsed().as_secs_f64();
        let total = latencies.len();
        latencies.sort_by(f64::total_cmp);
        let q = |p: f64| latencies[((p * total as f64).ceil() as usize).clamp(1, total) - 1];
        let compiles = server.metrics().cache.misses;
        let run = ModeRun {
            results,
            wall_s,
            qps: total as f64 / wall_s,
            p50_s: q(0.50),
            p95_s: q(0.95),
            compiles,
        };
        if best.as_ref().is_none_or(|b| run.wall_s < b.wall_s) {
            best = Some(run);
        }
    }
    best.expect("at least one rep")
}

fn assert_identical(label: &str, reference: &ModeRun, run: &ModeRun) {
    for (i, (rs, os)) in reference.results.iter().zip(&run.results).enumerate() {
        for (j, (r, o)) in rs.iter().zip(os).enumerate() {
            assert_eq!(r.rows.len(), o.rows.len(), "{label} s{i}q{j}: row count");
            for (x, y) in r.rows.iter().zip(&o.rows) {
                for (u, v) in x.iter().zip(y) {
                    assert_eq!(u.render(), v.render(), "{label} s{i}q{j}: values");
                }
            }
            for (name, a, b) in [
                ("compile_s", r.modeled.compile_s, o.modeled.compile_s),
                ("kernel_s", r.modeled.kernel_s, o.modeled.kernel_s),
                ("pcie_s", r.modeled.pcie_s, o.modeled.pcie_s),
                ("cpu_s", r.modeled.cpu_s, o.modeled.cpu_s),
            ] {
                assert_eq!(a.to_bits(), b.to_bits(), "{label} s{i}q{j}: modeled {name}");
            }
        }
    }
}

fn main() {
    let opts = HarnessOpts::from_args(1_024);
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/BENCH_server.json".to_string());
    let n = opts.sim_tuples;
    let reps = if opts.quick { 1 } else { 2 };
    let session_counts: &[usize] = if opts.quick { &[1, 8] } else { &[1, 4, 8, 16] };
    println!(
        "bench_server: {n} tuples, 4 workers, 2 queries x 2 slots per session, \
         {reps} rep(s), host threads {}, NVCC latency emulation on\n",
        auto_threads()
    );
    println!(
        "{:<10} {:>9} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "mode", "sessions", "wall", "qps", "p50", "p95", "compiles"
    );

    let mut rows_json = Vec::new();
    for &sessions in session_counts {
        let off = run_mode("off", sessions, n, reps);
        let mut qps_by_mode = std::collections::HashMap::new();
        for mode in ["off", "per-query", "arena"] {
            let run_owned;
            let run = if mode == "off" {
                &off
            } else {
                run_owned = run_mode(mode, sessions, n, reps);
                &run_owned
            };
            assert_identical(&format!("{mode}@{sessions}"), &off, run);
            assert_eq!(
                run.compiles,
                4 * sessions as u64,
                "{mode}@{sessions}: every session's 4 signatures compile exactly once"
            );
            println!(
                "{:<10} {:>9} {:>8.3} s {:>10.2} {:>7.3} s {:>7.3} s {:>9}",
                mode, sessions, run.wall_s, run.qps, run.p50_s, run.p95_s, run.compiles
            );
            qps_by_mode.insert(mode, run.qps);
            rows_json.push(format!(
                "{{\"mode\":\"{mode}\",\"sessions\":{sessions},\"wall_s\":{:.6},\
                 \"qps\":{:.3},\"p50_s\":{:.6},\"p95_s\":{:.6},\"compiles\":{},\
                 \"identical_to_off\":true}}",
                run.wall_s, run.qps, run.p50_s, run.p95_s, run.compiles
            ));
        }
        if sessions == 8 {
            let gain = qps_by_mode["arena"] / qps_by_mode["per-query"];
            println!("  -> arena vs per-query at 8 sessions: {gain:.2}x cold-cache QPS");
            assert!(
                gain >= 2.0,
                "arena must deliver >= 2x cold-cache QPS over per-query pipelining \
                 at 8 sessions, got {gain:.2}x"
            );
        }
        println!();
    }

    let json = format!(
        "{{\"bench\":\"server\",\"host_threads\":{},\"quick\":{},\"tuples\":{n},\
         \"workers\":4,\"compile_lanes\":32,\"queries_per_session\":2,\
         \"slots_per_query\":2,\"reps\":{reps},\"nvcc_latency_emulation\":true,\
         \"runs\":[{}]}}\n",
        auto_threads(),
        opts.quick,
        rows_json.join(",")
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(&out_path, &json).expect("write BENCH_server.json");
    println!("wrote {out_path}");
}
