//! Ablation: the representation decision of §III-B1.
//!
//! UltraPrecise evaluated three layouts for a decimal column and kept the
//! compact one:
//!
//! * **compact** (chosen): `Lb = ⌈(1+p·log₂10)/8⌉` bytes, sign folded into
//!   one bit; additions between different scales pay an alignment multiply;
//! * **word-aligned**: `4·Lw + 1` bytes, same arithmetic, more traffic;
//! * **alternative** (PostgreSQL/RateupDB style, discarded): decimal point
//!   between array elements, `alt_words·4 + 1` bytes — **no alignment
//!   multiply ever**, but up to double the storage at low precision.
//!
//! The paper's verdict: "compared to the align operations, reading data
//! from the memory dominates the execution time of additions and
//! subtractions. A compact representation benefits the calculation."
//! This harness prices `a + b` (different scales, so compact/word pay the
//! alignment) under all three layouts and reports storage and time.

use up_baselines::AltDecimal;
use up_bench::{fmt_time, precision_for_len, print_header, print_row, HarnessOpts, LEN_SERIES};
use up_gpusim::cost::kernel_time;
use up_gpusim::{DeviceConfig, ExecStats, KernelBuilder};
use up_num::DecimalType;

/// Modeled launch statistics for an `a + b` pass over `n` tuples where
/// each operand/result occupies `bytes` and the kernel additionally runs
/// `align_cycles` of alignment work per warp-tuple.
fn stats_for(n: u64, bytes_per_tuple: u64, add_cycles: f64, align_cycles: f64, device: &DeviceConfig) -> ExecStats {
    let warps = n.div_ceil(device.warp_size as u64).max(1);
    let per_warp = add_cycles + align_cycles + 40.0; // loads/stores/addressing
    ExecStats {
        thread_insts: (per_warp * n as f64) as u64,
        warp_issue_cycles: per_warp * warps as f64,
        warp_issues: (per_warp * warps as f64) as u64,
        mem_transactions: n * bytes_per_tuple / 32 + 1,
        dram_bytes: n * bytes_per_tuple,
        divergent_branches: 0,
        warps,
        blocks: warps.div_ceil(8),
        sample_scale: 1.0,
    }
}

fn main() {
    let opts = HarnessOpts::from_args(10_000);
    let device = DeviceConfig::a6000();
    let n = opts.report_tuples;
    println!(
        "§III-B1 ablation: a + b (scales 2 vs 9) at {} tuples under three layouts\n",
        n
    );

    let widths = [7usize, 10, 10, 10, 12, 12, 12];
    print_header(
        &["LEN", "compact B", "word B", "alt B", "t compact", "t word", "t alt"],
        &widths,
    );
    // Low-precision rows first — where §III-B1's "double space is
    // required" bites (1.23 in a word-aligned split layout needs two
    // words where compact needs one).
    let mut cases: Vec<(String, u32, u32)> = vec![
        ("p=4".into(), 4, 2),
        ("p=9".into(), 9, 4),
    ];
    for &len in &LEN_SERIES {
        cases.push((format!("{len}"), precision_for_len(len) - 1, 9));
    }
    for (label, p, s2) in cases {
        let t1 = DecimalType::new_unchecked(p, 2.min(p - 1));
        let t2 = DecimalType::new_unchecked(p, s2.min(p - 1));
        let out = t1.add_result(&t2);
        let lw = out.lw() as f64;

        // Bytes per tuple: two operands + result.
        let compact_b = (t1.lb() + t2.lb() + out.lb()) as u64;
        let word_b = (4 * t1.lw() + 1 + 4 * t2.lw() + 1 + 4 * out.lw() + 1) as u64;
        let alt_b = (AltDecimal::bytes_for(t1) + AltDecimal::bytes_for(t2) + AltDecimal::bytes_for(out)) as u64;

        // Compute: the addc chain costs ~2·Lw; the alignment multiply is a
        // generic Lw×Lw schoolbook (§III-D1) for compact/word layouts; the
        // alternative layout never aligns (Fig. 5) but adds a base-10⁹
        // carry normalization per fraction word.
        let add_cycles = 2.0 * lw;
        let align = 6.0 * lw * lw;
        let alt_extra = 4.0 * (out.scale as f64 / 9.0).ceil();

        let time = |bytes: u64, align_cycles: f64| {
            let k = KernelBuilder::new().finish("repr", 16 + (2.2 * lw) as u32);
            let s = stats_for(n, bytes, add_cycles, align_cycles, &device);
            kernel_time(&k, &s, &device).total_s
        };
        let t_compact = time(compact_b, align);
        let t_word = time(word_b, align);
        let t_alt = time(alt_b, alt_extra);

        print_row(
            &[
                label,
                format!("{compact_b}"),
                format!("{word_b}"),
                format!("{alt_b}"),
                fmt_time(t_compact),
                fmt_time(t_word),
                fmt_time(t_alt),
            ],
            &widths,
        );
    }
    println!(
        "\nReading the table: at low LEN the alternative layout moves up to 2× the \
         bytes (its whole premise — skipping the alignment multiply — buys little \
         because the kernel is memory-bound), so compact wins; at high LEN the \
         alignment multiply grows as Lw² and the gap narrows, which is why the \
         paper pairs the compact layout with alignment *scheduling* (Fig. 10) \
         instead of switching representations."
    );
}
