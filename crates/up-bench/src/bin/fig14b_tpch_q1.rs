//! Figure 14(b) — TPC-H Q1 at the original precision and with
//! `l_quantity`/`l_extendedprice` extended so the aggregates land on
//! LEN 2/4/8/16/32, plus the §IV-D1 extras: the compile/execute split
//! and the frame-of-reference compression case study.
//!
//! Expected shape: HEAVY.AI wins the original/LEN-2 points but cannot go
//! higher; UltraPrecise beats MonetDB (~1.2–1.6×) and RateupDB
//! (~1.5–1.7×) where they still run, and PostgreSQL by 40× at the
//! original precision, shrinking to ~8× at LEN 32; the compile share
//! falls from ~47% to ~7% as kernels grow.

use up_bench::{fmt_time, print_header, print_row, scale_modeled, HarnessOpts};
use up_engine::{Database, Profile};
use up_workloads::{compression, tpch};

fn main() {
    let opts = HarnessOpts::from_args(4_000);
    println!(
        "Figure 14(b): TPC-H Q1 — lineitem {} rows scaled to {} (scan excluded, as §IV-D1)\n",
        opts.sim_tuples, opts.report_tuples
    );

    let systems = [
        Profile::HeavyAiLike,
        Profile::RateupLike,
        Profile::MonetLike,
        Profile::PostgresLike,
        Profile::UltraPrecise,
    ];
    // Column-precision settings: None = original DECIMAL(12,2); the rest
    // target the LEN series for the SUM(charge) aggregate.
    let settings: [(&str, Option<u32>); 6] = [
        ("orig", None),
        ("LEN=2", Some(14)),
        ("LEN=4", Some(30)),
        ("LEN=8", Some(66)),
        ("LEN=16", Some(140)),
        ("LEN=32", Some(290)),
    ];

    let widths = [13usize, 12, 12, 12, 12, 12, 12];
    print_header(
        &["system", "orig", "LEN=2", "LEN=4", "LEN=8", "LEN=16", "LEN=32"],
        &widths,
    );
    let mut compile_split: Vec<(String, f64, f64)> = Vec::new();
    for &sys in &systems {
        let mut cells = vec![sys.name().to_string()];
        for (label, ext) in settings {
            let cfg = tpch::TpchConfig {
                lineitem_rows: opts.sim_tuples,
                seed: 14,
                extended_precision: ext,
            };
            let mut db = Database::new(sys);
            tpch::load(&mut db, cfg);
            match db.query(tpch::q1_sql()) {
                Ok(r) => {
                    let mut m = scale_modeled(&r.modeled, opts.scale());
                    m.scan_s = 0.0; // §IV-D1 excludes the scan
                    if sys == Profile::UltraPrecise {
                        compile_split.push((label.to_string(), m.compile_s, m.total()));
                    }
                    cells.push(fmt_time(m.total()));
                }
                Err(_) => cells.push("✗".to_string()),
            }
        }
        print_row(&cells, &widths);
    }

    println!("\nUltraPrecise compile/execute split (§IV-D1 reports 47% → 7%):");
    for (label, compile, total) in &compile_split {
        println!(
            "  {label:<7} compile {:>9} of {:>9}  ({:.0}%)",
            fmt_time(*compile),
            fmt_time(*total),
            compile / total * 100.0
        );
    }

    // FOR-compression case study: compress the two wide columns under
    // three distributions and report the PCIe + kernel effect.
    println!("\nFrame-of-reference compression case study (§IV-D1):");
    let widths2 = [8usize, 12, 12, 12, 14];
    print_header(&["LEN", "uncomp MB", "comp MB", "ratio", "est speedup"], &widths2);
    for (len, ext) in [(4usize, 30u32), (8, 66), (16, 140), (32, 290)] {
        let (qty_ty, _) = tpch::lineitem_decimal_types(Some(ext));
        // Values cluster in a band whose width grows slower than the
        // type (dbgen-like distributions: wider types don't mean wider
        // spreads), so the FOR ratio improves with LEN — the paper's
        // 1.38× → 4.80× trend.
        let spread = (qty_ty.precision / 5 + 10).min(qty_ty.precision);
        let vals = up_workloads::datagen::random_decimal_column(
            opts.sim_tuples,
            qty_ty,
            qty_ty.precision - spread,
            false,
            ext as u64,
        );
        let comp = compression::compress(&vals, qty_ty);
        let scale = opts.scale();
        let uncomp_mb = comp.uncompressed_bytes() as f64 * scale / 1e6;
        let comp_mb = comp.compressed_bytes() as f64 * scale / 1e6;
        // Transfer-bound estimate: PCIe moves ratio× fewer bytes; the
        // kernel pays a small decompression term.
        let pcie_gbps = 25.0e9;
        let t_plain = uncomp_mb * 1e6 / pcie_gbps;
        let t_comp = comp_mb * 1e6 / pcie_gbps
            + opts.report_tuples as f64
                * compression::decompress_cycles_per_value(qty_ty, comp.blocks[0].width)
                / (84.0 * 4.0 * 1.8e9);
        print_row(
            &[
                format!("{len}"),
                format!("{uncomp_mb:.1}"),
                format!("{comp_mb:.1}"),
                format!("{:.2}×", comp.ratio()),
                format!("{:.2}×", t_plain / t_comp),
            ],
            &widths2,
        );
    }
    println!("Paper reference: 1.38× / 2.01× / 3.36× / 4.80× end-to-end at LEN 4/8/16/32.");
}
