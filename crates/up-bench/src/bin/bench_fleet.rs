//! `bench_fleet` — data-parallel scans over a simulated GPU fleet.
//!
//! Two workload shapes, both warm-cache (one warming run so the JIT
//! cache absorbs compilation, as in Table I's methodology):
//!
//! - **fig14a aggregation**: `SELECT SUM(c1) FROM r3` over DECIMAL(65,31)
//!   (LEN 8 results), the paper's Query 3 shape;
//! - **TPC-H Q1**: the full multi-aggregate lineitem scan at the
//!   original DECIMAL(12,2) precision.
//!
//! Each shape runs at 1/2/4/8 A6000-class devices (1/2/4 with
//! `--quick`). The fleet is strictly side-band: the harness asserts that
//! result rows, every `ModeledTime` component, and kernel-launch counts
//! are bit-identical across all fleet sizes, then reads the modeled
//! makespan and speedup from each run's [`FleetReport`] (range shards at
//! throughput-weighted bounds, partial aggregates merged in device
//! order, PCIe-priced exchange).
//!
//! Acceptance: modeled speedup ≥ 1.5× at 2 devices and ≥ 3× at 4
//! devices on both shapes. Results go to `results/BENCH_fleet.json`.
//!
//! Usage: `bench_fleet [--quick] [--tuples N] [--out PATH]`.
//!
//! [`FleetReport`]: up_engine::FleetReport

use std::sync::Arc;
use up_bench::{fmt_time, print_header, print_row, runner, HarnessOpts};
use up_engine::{Database, Profile, QueryResult};
use up_gpusim::Fleet;
use up_num::DecimalType;
use up_workloads::tpch;

/// One device-count point of a shape's sweep.
struct Point {
    devices: usize,
    single_device_s: f64,
    makespan_s: f64,
    speedup: f64,
    exchange_bytes: u64,
    exchange_s: f64,
}

struct ShapeOutcome {
    shape: &'static str,
    sql: String,
    points: Vec<Point>,
}

fn assert_bit_identical(shape: &str, devices: usize, base: &QueryResult, r: &QueryResult) {
    assert_eq!(base.rows.len(), r.rows.len(), "{shape}@{devices}: row count");
    for (a, b) in base.rows.iter().zip(&r.rows) {
        for (u, v) in a.iter().zip(b) {
            assert_eq!(u.render(), v.render(), "{shape}@{devices}: result values");
        }
    }
    assert_eq!(base.kernels, r.kernels, "{shape}@{devices}: kernel launches");
    for (name, s, f) in [
        ("scan_s", base.modeled.scan_s, r.modeled.scan_s),
        ("pcie_s", base.modeled.pcie_s, r.modeled.pcie_s),
        ("compile_s", base.modeled.compile_s, r.modeled.compile_s),
        ("kernel_s", base.modeled.kernel_s, r.modeled.kernel_s),
        ("cpu_s", base.modeled.cpu_s, r.modeled.cpu_s),
        ("queue_s", base.modeled.queue_s, r.modeled.queue_s),
    ] {
        assert_eq!(
            s.to_bits(),
            f.to_bits(),
            "{shape}@{devices}: {name} diverged ({s} vs {f})"
        );
    }
}

/// Runs one shape across the device-count series: fresh identically
/// seeded database per point, one warming query, then the measured run.
fn run_shape(
    shape: &'static str,
    sql: &str,
    counts: &[usize],
    base_rows: u64,
    mut build: impl FnMut() -> Database,
) -> ShapeOutcome {
    let mut baseline: Option<QueryResult> = None;
    let mut points = Vec::new();
    for &devices in counts {
        let mut db = build();
        if devices > 1 {
            db.set_fleet(Some(Arc::new(Fleet::a6000s(devices))));
        }
        db.query(sql).expect("warming run");
        let r = db.query(sql).expect("measured run");
        match &baseline {
            None => {
                assert!(r.fleet.is_none(), "{shape}: no fleet report at 1 device");
                points.push(Point {
                    devices,
                    single_device_s: r.modeled.total(),
                    makespan_s: r.modeled.total(),
                    speedup: 1.0,
                    exchange_bytes: 0,
                    exchange_s: 0.0,
                });
                baseline = Some(r);
            }
            Some(base) => {
                assert_bit_identical(shape, devices, base, &r);
                let f = r.fleet.as_ref().expect("fleet report at > 1 device");
                assert_eq!(f.devices, devices);
                assert_eq!(
                    f.partition_rows.iter().sum::<u64>(),
                    base_rows,
                    "{shape}@{devices}: shards cover the base table"
                );
                points.push(Point {
                    devices,
                    single_device_s: f.single_device_s,
                    makespan_s: f.makespan_s,
                    speedup: f.speedup,
                    exchange_bytes: f.exchange_bytes,
                    exchange_s: f.exchange_s,
                });
            }
        }
    }
    ShapeOutcome { shape, sql: sql.to_string(), points }
}

fn main() {
    let opts = HarnessOpts::from_args(8_000);
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/BENCH_fleet.json".to_string());
    let counts: &[usize] = if opts.quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    println!(
        "bench_fleet: {} tuples, warm JIT cache, {} A6000-class devices\n",
        opts.sim_tuples,
        counts.iter().map(|c| c.to_string()).collect::<Vec<_>>().join("/"),
    );

    let agg_ty = DecimalType::new_unchecked(65, 31);
    let shapes = [
        run_shape("fig14a_sum", "SELECT SUM(c1) FROM r3", counts, opts.sim_tuples as u64, || {
            runner::decimal_db(
                Profile::UltraPrecise,
                "r3",
                &[("c1", agg_ty)],
                opts.sim_tuples,
                2,
                65,
            )
        }),
        run_shape("tpch_q1", tpch::q1_sql(), counts, opts.sim_tuples as u64, || {
            let mut db = Database::new(Profile::UltraPrecise);
            tpch::load(
                &mut db,
                tpch::TpchConfig {
                    lineitem_rows: opts.sim_tuples,
                    seed: 14,
                    extended_precision: None,
                },
            );
            db
        }),
    ];

    let widths = [12usize, 9, 14, 14, 12, 10];
    print_header(
        &["shape", "devices", "1-device", "makespan", "exchange", "speedup"],
        &widths,
    );
    let mut shape_json = Vec::new();
    for s in &shapes {
        let mut point_json = Vec::new();
        for p in &s.points {
            print_row(
                &[
                    s.shape.to_string(),
                    p.devices.to_string(),
                    fmt_time(p.single_device_s),
                    fmt_time(p.makespan_s),
                    fmt_time(p.exchange_s),
                    format!("{:.2}×", p.speedup),
                ],
                &widths,
            );
            point_json.push(format!(
                "{{\"devices\":{},\"single_device_s\":{:.9},\"makespan_s\":{:.9},\
                 \"speedup\":{:.4},\"exchange_bytes\":{},\"exchange_s\":{:.9}}}",
                p.devices, p.single_device_s, p.makespan_s, p.speedup, p.exchange_bytes,
                p.exchange_s
            ));
        }
        shape_json.push(format!(
            "{{\"shape\":\"{}\",\"sql\":{:?},\"bit_identical\":true,\"points\":[{}]}}",
            s.shape,
            s.sql,
            point_json.join(",")
        ));
    }

    // The acceptance bar: sharding pays ≥ 1.5× at 2 devices and ≥ 3× at
    // 4 on both shapes (warm cache, so the unsharded compile leg is a
    // cache hit and the makespan is shard-dominated).
    for s in &shapes {
        for p in &s.points {
            match p.devices {
                2 => assert!(
                    p.speedup >= 1.5,
                    "{}: expected >= 1.5x at 2 devices, got {:.3}x",
                    s.shape,
                    p.speedup
                ),
                4 => assert!(
                    p.speedup >= 3.0,
                    "{}: expected >= 3x at 4 devices, got {:.3}x",
                    s.shape,
                    p.speedup
                ),
                _ => {}
            }
        }
    }
    println!("\nresults and modeled times bit-identical across all fleet sizes ✓");

    let json = format!(
        "{{\"bench\":\"fleet\",\"quick\":{},\"tuples\":{},\"device_counts\":{:?},\
         \"shapes\":[{}]}}\n",
        opts.quick,
        opts.sim_tuples,
        counts,
        shape_json.join(",")
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(&out_path, &json).expect("write results json");
    println!("wrote {out_path}");
}
