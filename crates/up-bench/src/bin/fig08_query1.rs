//! Figure 8 — Query 1: `SELECT c1+c2+c3 FROM R1` across result LEN ∈
//! {2,4,8,16,32} on HEAVY.AI, RateupDB, MonetDB, PostgreSQL, and
//! UltraPrecise (no alignment scheduling or constant optimization is
//! exercised: all three columns share precision and scale 2, and the
//! multi-threading arithmetic is disabled, §IV-A).
//!
//! Expected shape: HEAVY.AI only completes LEN 2; MonetDB and RateupDB
//! stop after LEN 4; PostgreSQL completes everything but slowly (the
//! paper's 5.24× GPU speedup at high LEN); UltraPrecise tracks RateupDB
//! at LEN 2 and overtakes from LEN 4.

use up_bench::{precision_for_len, print_header, print_row, runner, HarnessOpts, LEN_SERIES};
use up_engine::Profile;
use up_gpusim::SimParallelism;
use up_num::DecimalType;

/// Runs Query 1 on UltraPrecise under every simulator-parallelism
/// setting and asserts results and modeled time are identical — the
/// harness-level leg of the parallel-vs-serial determinism suite.
fn determinism_check(sim_tuples: usize) {
    let ty = DecimalType::new_unchecked(precision_for_len(8) - 2, 2);
    let cols = [("c1", ty), ("c2", ty), ("c3", ty)];
    let run = |par: SimParallelism| {
        let mut db =
            runner::decimal_db(Profile::UltraPrecise, "r1", &cols, sim_tuples, 1, 808);
        db.sim_par = par;
        db.query("SELECT c1 + c2 + c3 FROM r1").expect("query 1")
    };
    let serial = run(SimParallelism::Serial);
    for par in [
        SimParallelism::Threads(1),
        SimParallelism::Threads(8),
        SimParallelism::Auto,
    ] {
        let r = run(par);
        assert_eq!(
            serial.rows.len(),
            r.rows.len(),
            "determinism check ({par}): row count"
        );
        for (a, b) in serial.rows.iter().zip(&r.rows) {
            assert_eq!(a[0].render(), b[0].render(), "determinism check ({par}): values");
        }
        for (name, x, y) in [
            ("kernel_s", serial.modeled.kernel_s, r.modeled.kernel_s),
            ("pcie_s", serial.modeled.pcie_s, r.modeled.pcie_s),
            ("compile_s", serial.modeled.compile_s, r.modeled.compile_s),
            ("cpu_s", serial.modeled.cpu_s, r.modeled.cpu_s),
        ] {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "determinism check ({par}): modeled {name} must be bit-equal"
            );
        }
    }
    println!(
        "determinism check: serial vs threads(1)/threads(8)/auto — identical results \
         and bit-equal modeled time over {sim_tuples} tuples\n"
    );
}

/// Runs a multi-expression Query-1 variant with the launch DAG off and
/// on and asserts byte-identical results and bit-equal modeled time —
/// the pipelining leg of the determinism suite (mirrors the simulator-
/// parallelism leg above).
fn pipeline_check(sim_tuples: usize) {
    use up_gpusim::PipelineMode;
    let ty = DecimalType::new_unchecked(precision_for_len(8) - 2, 2);
    let cols = [("c1", ty), ("c2", ty), ("c3", ty)];
    // Three independent expression slots, one repeated signature.
    let sql = "SELECT c1 + c2 + c3, c1 * c2, c2 + c3 * c1, c1 + c2 + c3 FROM r1";
    let run = |mode: PipelineMode| {
        let mut db =
            runner::decimal_db(Profile::UltraPrecise, "r1", &cols, sim_tuples, 1, 808);
        db.pipeline = mode;
        db.query(sql).expect("pipelined query 1")
    };
    let off = run(PipelineMode::Off);
    for mode in [PipelineMode::On(2), PipelineMode::On(8)] {
        let r = run(mode);
        assert_eq!(off.rows.len(), r.rows.len(), "pipeline check ({mode}): row count");
        for (a, b) in off.rows.iter().zip(&r.rows) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.render(), y.render(), "pipeline check ({mode}): values");
            }
        }
        for (name, x, y) in [
            ("kernel_s", off.modeled.kernel_s, r.modeled.kernel_s),
            ("pcie_s", off.modeled.pcie_s, r.modeled.pcie_s),
            ("compile_s", off.modeled.compile_s, r.modeled.compile_s),
            ("cpu_s", off.modeled.cpu_s, r.modeled.cpu_s),
        ] {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "pipeline check ({mode}): modeled {name} must be bit-equal"
            );
        }
        assert!(r.pipeline.is_some(), "pipeline check ({mode}): report expected");
    }
    println!(
        "pipeline check: off vs on(2)/on(8) — identical results and bit-equal \
         modeled time over {sim_tuples} tuples\n"
    );
}

fn main() {
    let opts = HarnessOpts::from_args(8_000);
    println!(
        "Figure 8: SELECT c1+c2+c3 FROM R1 — {} simulated tuples scaled to {}\n",
        opts.sim_tuples, opts.report_tuples
    );
    determinism_check(opts.sim_tuples.clamp(512, 4_096));
    pipeline_check(opts.sim_tuples.clamp(512, 4_096));

    let systems = [
        Profile::HeavyAiLike,
        Profile::RateupLike,
        Profile::MonetLike,
        Profile::PostgresLike,
        Profile::UltraPrecise,
    ];
    let widths = [13usize, 14, 14, 14, 14, 14];
    print_header(&["system", "LEN=2", "LEN=4", "LEN=8", "LEN=16", "LEN=32"], &widths);

    let mut rows: Vec<Vec<String>> =
        systems.iter().map(|p| vec![p.name().to_string()]).collect();
    for &len in &LEN_SERIES {
        // A 3-term same-scale add widens by 2 digits (§III-B3): pick the
        // column precision so the *result* hits the LEN target.
        let result_p = precision_for_len(len);
        let col_p = result_p - 2;
        let ty = DecimalType::new_unchecked(col_p, 2);
        let cols = [("c1", ty), ("c2", ty), ("c3", ty)];
        let outcomes = runner::sweep(
            &systems,
            |p| runner::decimal_db(p, "r1", &cols, opts.sim_tuples, 1, 800 + len as u64),
            "SELECT c1 + c2 + c3 FROM r1",
            opts.scale(),
            false,
        );
        for (row, o) in rows.iter_mut().zip(&outcomes) {
            row.push(match &o.result {
                Ok(m) => up_bench::fmt_time(m.total()),
                Err(_) => "✗".to_string(),
            });
        }
    }
    for row in &rows {
        print_row(row, &widths);
    }

    println!(
        "\n✗ = the system cannot declare or compute the type (HEAVY.AI caps at p=18, \
         MonetDB at 38, RateupDB at 36/38-intermediate), matching the paper's missing bars."
    );
}
