//! Golden tests on generated-kernel *structure*: the instruction mix must
//! reflect the paper's code shapes — carry chains sized by Lw (Listing 2),
//! compact byte I/O (Listing 1's three steps), alignment multiplies
//! appearing exactly when scales differ, and `div_big` only for ÷/%.

use up_gpusim::disasm;
use up_jit::cache::{Compiled, JitEngine, JitOptions};
use up_jit::Expr;
use up_num::DecimalType;

fn ty(p: u32, s: u32) -> DecimalType {
    DecimalType::new_unchecked(p, s)
}

fn kernel_of(e: &Expr, opts: JitOptions) -> up_jit::CompiledExpr {
    let jit = JitEngine::new(opts);
    let (c, _) = jit.compile(e);
    match c {
        Compiled::Kernel(k) => (*k).clone(),
        other => panic!("expected kernel, got {other:?}"),
    }
}

#[test]
fn same_scale_add_has_carry_chain_but_no_multiply() {
    // Two (17,2) columns: LEN 2 result, no alignment → add.cc + addc.cc,
    // zero mul instructions.
    let e = Expr::col(0, ty(17, 2), "a").add(Expr::col(1, ty(17, 2), "b"));
    let k = kernel_of(&e, JitOptions::none());
    let h = disasm::histogram(&k.kernel);
    assert!(h.get("add.cc").copied().unwrap_or(0) >= 1, "{h:?}");
    assert!(h.get("addc.cc").copied().unwrap_or(0) >= 1, "{h:?}");
    assert_eq!(h.get("mul.hi"), None, "no alignment ⇒ no wide multiply: {h:?}");
    assert_eq!(h.get("div_big"), None);
    // Listing 1's three steps: byte loads (expand) and byte stores
    // (compact write-back) both present.
    assert!(h.get("ld.global").copied().unwrap_or(0) >= 2 * ty(17, 2).lb());
    assert!(h.get("st.global").copied().unwrap_or(0) >= k.out_ty.lb());
}

#[test]
fn carry_chain_length_tracks_lw() {
    // The addc chain grows with the result word count, exactly like the
    // #pragma-unrolled loop of Listing 2.
    let count_addc = |p: u32| {
        let e = Expr::col(0, ty(p, 2), "a").add(Expr::col(1, ty(p, 2), "b"));
        let k = kernel_of(&e, JitOptions::none());
        disasm::histogram(&k.kernel).get("addc.cc").copied().unwrap_or(0)
    };
    let small = count_addc(17); // LEN 2 (chain of 2 words)
    let large = count_addc(150); // LEN 16 (chain of 16 words)
    assert!(large > 4 * small, "addc count must scale with Lw: {small} vs {large}");
}

#[test]
fn mixed_scales_introduce_alignment_multiplies() {
    let same = Expr::col(0, ty(17, 2), "a").add(Expr::col(1, ty(17, 2), "b"));
    let mixed = Expr::col(0, ty(17, 2), "a").add(Expr::col(1, ty(17, 9), "b"));
    let h_same = disasm::histogram(&kernel_of(&same, JitOptions::none()).kernel);
    let h_mixed = disasm::histogram(&kernel_of(&mixed, JitOptions::none()).kernel);
    assert_eq!(h_same.get("mul.hi"), None);
    assert!(
        h_mixed.get("mul.hi").copied().unwrap_or(0) > 0,
        "alignment is a multiplication (§III-D1): {h_mixed:?}"
    );
}

#[test]
fn division_uses_the_macro_op_and_modulo_truncates() {
    let div = Expr::col(0, ty(12, 4), "a").div(Expr::col(1, ty(12, 2), "b"));
    let h = disasm::histogram(&kernel_of(&div, JitOptions::none()).kernel);
    assert_eq!(h.get("div_big").copied().unwrap_or(0), 1, "{h:?}");
    let rem = Expr::col(0, ty(12, 4), "a").rem(Expr::col(1, ty(12, 2), "b"));
    let h = disasm::histogram(&kernel_of(&rem, JitOptions::none()).kernel);
    assert_eq!(h.get("rem_big").copied().unwrap_or(0), 1);
    // Truncating the scale-4 and scale-2 operands needs two div_big calls.
    assert_eq!(h.get("div_big").copied().unwrap_or(0), 2, "{h:?}");
}

#[test]
fn disassembly_of_listing1_kernel_is_stable() {
    let e = Expr::col(0, ty(4, 2), "c1_4_2").add(Expr::col(1, ty(4, 1), "c2_4_1"));
    let k = kernel_of(&e, JitOptions::default());
    let text = disasm::disassemble(&k.kernel);
    for needle in [
        ".visible .entry calc_expr_1()",
        "mov.u32         %r0, %tid.x;",
        "ld.param.u32",
        "while %p0",
        "ld.global.u8",
        "st.global.u8",
        "add.cc.u32",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn optimized_kernels_never_grow() {
    // Across a set of expressions, turning the §III-D pipeline on must
    // never increase the static instruction count.
    let a = || Expr::col(0, ty(20, 1), "a");
    let b = || Expr::col(1, ty(20, 9), "b");
    let exprs = vec![
        a().add(b()).add(a()).add(a()),
        Expr::lit("1").unwrap().add(a()).add(Expr::lit("2").unwrap()),
        Expr::lit("0.25").unwrap().mul(a().add(b())).mul(Expr::lit("4").unwrap()),
        a().mul(b()).sub(a()),
    ];
    for e in exprs {
        let raw = kernel_of(&e, JitOptions::none()).kernel.static_inst_count();
        let opt = kernel_of(&e, JitOptions::default()).kernel.static_inst_count();
        assert!(opt <= raw, "{opt} > {raw} for {e:?}");
    }
}
