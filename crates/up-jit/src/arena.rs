//! Cross-query compile coordination for the server-wide pipeline arena.
//!
//! Per-query launch DAGs (PR 3) dedup kernel signatures *within* one
//! plan; concurrent sessions of `up-server` still raced each other to
//! the shard lock of [`crate::cache::SharedKernelCache`]. That race is
//! correct but wasteful in two ways a busy server cares about:
//!
//! 1. **Late start.** A query's first-occurrence compiles begin only
//!    when a worker dequeues it, so a queue of eight cold queries pays
//!    its NVCC latencies in worker-count-sized waves.
//! 2. **Blind duplication.** Query B discovers that query A is already
//!    compiling a signature only by blocking on the shard lock.
//!
//! [`CompileArena`] fixes both: at *admission* time the server
//! registers every kernel signature a query will need. The first
//! registration of a signature becomes its **owner** and starts the
//! compile immediately on a bounded pool of compile lanes; later
//! registrations — from any query — are counted as cross-query dedups
//! and simply rendezvous with the in-flight entry. Lane dispatch is
//! weighted deficit round-robin over sessions
//! ([`up_gpusim::pipeline::DeficitRoundRobin`]), so one wide analytic
//! session cannot monopolize the lanes.
//!
//! **Bit-exactness.** Cache hit/miss counters and per-query
//! `ModeledTime` stay identical to serial one-query-at-a-time
//! execution: each signature is compiled (and its miss + modeled NVCC
//! seconds attributed) exactly once, by the owner query's rendezvous —
//! every other rendezvous waits for the entry to *finish* (including
//! the emulated NVCC sleep) and then performs a normal cache lookup,
//! recording the same hit the serial replay would. Ownership is pinned
//! under one lock in admission (seq) order, which is exactly the serial
//! replay order. The one caveat: if a query errors out before reaching
//! its owned slot, the miss has already been attributed to the arena's
//! helper thread — divergence is confined to error paths (and to
//! kernel-cache eviction pressure, which the server's capacity bound
//! avoids).

use crate::cache::{Compiled, CompileInfo, JitEngine};
use crate::expr::Expr;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use up_gpusim::pipeline::DeficitRoundRobin;

/// Point-in-time counters of a [`CompileArena`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CompileArenaStats {
    /// Kernel references registered at admission (incl. duplicates).
    pub registered: u64,
    /// First-occurrence compiles dispatched onto the lanes.
    pub compiles_started: u64,
    /// Registrations that matched a signature another query already
    /// owned — each one is a compile the server did not queue twice.
    pub cross_query_dedups: u64,
    /// Prefetched compile results taken by their owner query's slot.
    pub prefetched_taken: u64,
    /// Concurrent compile lanes of the pool.
    pub lanes: usize,
    /// Lanes currently running a compile.
    pub lanes_busy: usize,
    /// Compiles registered but not yet dispatched to a lane.
    pub queued: usize,
}

struct SigEntry {
    /// The admission seq of the query that first registered this
    /// signature; its slot takes the prefetched result (the miss).
    owner_seq: u64,
    done: bool,
    taken: bool,
    /// The owner finished (or was canceled) before the compile landed;
    /// the compile thread drops the entry instead of completing it.
    orphaned: bool,
    result: Option<(Compiled, CompileInfo)>,
}

struct PendingCompile {
    sig: String,
    expr: Expr,
}

#[derive(Default)]
struct ArenaState {
    entries: HashMap<String, SigEntry>,
    pending: HashMap<u64, VecDeque<PendingCompile>>,
    drr: DeficitRoundRobin,
    lanes_busy: usize,
    queued: usize,
    registered: u64,
    compiles_started: u64,
    cross_query_dedups: u64,
    prefetched_taken: u64,
}

/// The server-wide compile half of the pipeline arena: admission-time
/// kernel registration, bounded DRR-scheduled compile lanes, and
/// eval-time rendezvous. See the module docs for the design and the
/// bit-exactness argument.
pub struct CompileArena {
    jit: JitEngine,
    lanes: usize,
    state: Mutex<ArenaState>,
    done: Condvar,
}

impl CompileArena {
    /// A new arena compiling on `jit` (normally a [`JitEngine::fork`] of
    /// the database's engine, so the cache and NVCC-emulation flag are
    /// shared) with `lanes` concurrent compile lanes (clamped to ≥ 1).
    pub fn new(jit: JitEngine, lanes: usize) -> CompileArena {
        CompileArena {
            jit,
            lanes: lanes.max(1),
            state: Mutex::new(ArenaState::default()),
            done: Condvar::new(),
        }
    }

    /// Concurrent compile lanes of the pool.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Registers the kernel references of one admitted query
    /// (`(signature, expression)` pairs in plan order, duplicates
    /// included). First occurrences become owned entries and start
    /// compiling on the lanes; re-registrations by *other* queries are
    /// counted as cross-query dedups. `weight` is the session's DRR
    /// share of the lanes.
    pub fn register(
        self: &Arc<Self>,
        session: u64,
        weight: f64,
        seq: u64,
        kernels: &[(String, Expr)],
    ) {
        if kernels.is_empty() {
            return;
        }
        let mut st = self.state.lock().expect("compile arena poisoned");
        st.drr.set_weight(session, weight);
        for (sig, expr) in kernels {
            st.registered += 1;
            if let Some(e) = st.entries.get(sig) {
                if e.owner_seq != seq {
                    st.cross_query_dedups += 1;
                }
                continue;
            }
            st.entries.insert(
                sig.clone(),
                SigEntry {
                    owner_seq: seq,
                    done: false,
                    taken: false,
                    orphaned: false,
                    result: None,
                },
            );
            st.pending
                .entry(session)
                .or_default()
                .push_back(PendingCompile { sig: sig.clone(), expr: expr.clone() });
            st.queued += 1;
        }
        self.dispatch(&mut st);
    }

    /// Fills idle lanes from the per-session pending queues in weighted
    /// deficit round-robin order. Caller holds the state lock.
    fn dispatch(self: &Arc<Self>, st: &mut ArenaState) {
        loop {
            if st.lanes_busy >= self.lanes {
                return;
            }
            let job = {
                let ArenaState { drr, pending, .. } = &mut *st;
                let Some(sess) =
                    drr.next(&|id| pending.get(&id).is_some_and(|q| !q.is_empty()))
                else {
                    return;
                };
                let q = pending.get_mut(&sess).expect("eligible session has a queue");
                let job = q.pop_front().expect("eligible queue is non-empty");
                if q.is_empty() {
                    pending.remove(&sess);
                }
                job
            };
            st.queued -= 1;
            st.lanes_busy += 1;
            st.compiles_started += 1;
            let arena = Arc::clone(self);
            std::thread::spawn(move || arena.run_compile(job.sig, job.expr));
        }
    }

    /// One lane's work: compile (cache miss + emulated NVCC sleep happen
    /// here, on the shared cache), then publish the entry and refill the
    /// lane.
    fn run_compile(self: Arc<Self>, sig: String, expr: Expr) {
        // Mirror compile_async's budget behavior: take a token so Auto
        // launches back off, but run regardless — the lane mostly sleeps
        // on emulated NVCC latency, not the CPU.
        let _token = up_gpusim::par::acquire_extra(1);
        let result = self.jit.compile(&expr);
        let mut st = self.state.lock().expect("compile arena poisoned");
        st.lanes_busy -= 1;
        match st.entries.get_mut(&sig) {
            Some(e) if e.orphaned => {
                st.entries.remove(&sig);
            }
            Some(e) => {
                e.done = true;
                e.result = Some(result);
            }
            None => {}
        }
        self.dispatch(&mut st);
        drop(st);
        self.done.notify_all();
    }

    /// Eval-time rendezvous of query `seq` with the arena's entry for
    /// `expr`, replacing a direct `jit.compile` call:
    ///
    /// * unregistered signature (or passthrough) → `None`; the caller
    ///   compiles normally.
    /// * the owner's first arrival → blocks until the prefetched compile
    ///   lands, then takes its result — the cache miss and modeled NVCC
    ///   seconds, exactly as serial execution would attribute them.
    /// * anyone else → blocks until the entry is *finished* (including
    ///   the emulated NVCC sleep — no free ride on a half-done compile),
    ///   then performs a normal cache lookup, recording the same hit a
    ///   serial replay would.
    pub fn rendezvous(&self, seq: u64, expr: &Expr) -> Option<(Compiled, CompileInfo)> {
        let sig = self.jit.signature(expr)?;
        let mut st = self.state.lock().expect("compile arena poisoned");
        loop {
            match st.entries.get_mut(&sig) {
                None => return None,
                Some(e) if e.done => {
                    if e.owner_seq == seq && !e.taken {
                        e.taken = true;
                        let r = e.result.clone().expect("a done arena entry holds its result");
                        st.prefetched_taken += 1;
                        return Some(r);
                    }
                    break;
                }
                Some(_) => st = self.done.wait(st).expect("compile arena poisoned"),
            }
        }
        drop(st);
        Some(self.jit.compile(expr))
    }

    /// Tells the arena query `seq` is finished (success, error, or
    /// cancellation): its owned entries are dropped — the compiled
    /// kernels live on in the shared LRU cache — so arena memory stays
    /// bounded by the in-flight query set. In-flight compiles it owns
    /// are orphaned and cleaned up by their lane on completion.
    pub fn query_done(&self, seq: u64) {
        let mut st = self.state.lock().expect("compile arena poisoned");
        st.entries.retain(|_, e| {
            if e.owner_seq != seq {
                return true;
            }
            if e.done {
                return false;
            }
            e.orphaned = true;
            true
        });
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CompileArenaStats {
        let st = self.state.lock().expect("compile arena poisoned");
        CompileArenaStats {
            registered: st.registered,
            compiles_started: st.compiles_started,
            cross_query_dedups: st.cross_query_dedups,
            prefetched_taken: st.prefetched_taken,
            lanes: self.lanes,
            lanes_busy: st.lanes_busy,
            queued: st.queued,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use up_num::DecimalType;

    fn ty() -> DecimalType {
        DecimalType::new_unchecked(9, 3)
    }

    fn expr(k: u32) -> Expr {
        // Structurally distinct per k: different precision → distinct sig.
        let t = DecimalType::new_unchecked(9 + k, 3);
        Expr::col(0, t, "a").mul(Expr::col(1, ty(), "b"))
    }

    fn refs(jit: &JitEngine, exprs: &[Expr]) -> Vec<(String, Expr)> {
        exprs
            .iter()
            .filter_map(|e| jit.signature(e).map(|s| (s, e.clone())))
            .collect()
    }

    #[test]
    fn owner_takes_the_miss_and_everyone_else_hits() {
        let jit = JitEngine::with_defaults();
        let arena = Arc::new(CompileArena::new(jit.fork(), 2));
        let e = expr(0);
        let k = refs(&jit, std::slice::from_ref(&e));
        arena.register(1, 1.0, 10, &k); // query 10 owns the signature
        arena.register(2, 1.0, 11, &k); // query 11 dedups against it

        // The owner's rendezvous returns the prefetched miss.
        let (_, info) = arena.rendezvous(10, &e).expect("registered");
        assert!(!info.cached, "owner takes the compile miss");
        assert!(info.modeled_compile_s > 0.25);
        // The dedup'd query waits for completion, then records a hit.
        let (_, info2) = arena.rendezvous(11, &e).expect("registered");
        assert!(info2.cached);
        // A second arrival from the owner is an ordinary hit too.
        let (_, info3) = arena.rendezvous(10, &e).expect("registered");
        assert!(info3.cached);

        let s = arena.stats();
        assert_eq!(s.registered, 2);
        assert_eq!(s.compiles_started, 1);
        assert_eq!(s.cross_query_dedups, 1);
        assert_eq!(s.prefetched_taken, 1);
        // Cache counters match a serial replay: one miss, two hits.
        let cs = jit.cache_stats();
        assert_eq!((cs.misses, cs.hits), (1, 2), "{cs:?}");
    }

    #[test]
    fn unregistered_signatures_fall_through() {
        let jit = JitEngine::with_defaults();
        let arena = Arc::new(CompileArena::new(jit.fork(), 1));
        assert!(arena.rendezvous(1, &expr(5)).is_none());
        // Passthrough expressions have no signature at all.
        let p = Expr::lit("1").unwrap().add(Expr::col(0, ty(), "a"));
        assert!(arena.rendezvous(1, &p).is_none());
    }

    #[test]
    fn query_done_drops_owned_entries_but_keeps_cached_kernels() {
        let jit = JitEngine::with_defaults();
        let arena = Arc::new(CompileArena::new(jit.fork(), 4));
        let e = expr(1);
        let k = refs(&jit, std::slice::from_ref(&e));
        arena.register(1, 1.0, 20, &k);
        let _ = arena.rendezvous(20, &e).expect("owner take");
        arena.query_done(20);
        // The entry is gone → later queries compile normally and hit
        // the shared cache (which still holds the kernel).
        assert!(arena.rendezvous(21, &e).is_none());
        let (_, info) = jit.compile(&e);
        assert!(info.cached);
    }

    #[test]
    fn lanes_bound_concurrent_compiles_and_drain_the_queue() {
        let jit = JitEngine::with_defaults();
        let arena = Arc::new(CompileArena::new(jit.fork(), 2));
        let exprs: Vec<Expr> = (0..6).map(expr).collect();
        let k = refs(&jit, &exprs);
        assert_eq!(k.len(), 6);
        arena.register(1, 1.0, 1, &k);
        assert!(arena.stats().lanes_busy <= 2);
        // Every rendezvous completes; the owner takes each miss once.
        for e in &exprs {
            let (_, info) = arena.rendezvous(1, e).expect("registered");
            assert!(!info.cached);
        }
        let s = arena.stats();
        assert_eq!(s.compiles_started, 6);
        assert_eq!(s.prefetched_taken, 6);
        assert_eq!(s.queued, 0);
        assert_eq!(jit.cache_stats().misses, 6);
    }
}
