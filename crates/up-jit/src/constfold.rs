//! Constant optimization — §III-D2, Fig. 7.
//!
//! Three compile-time transformations on the n-ary tree:
//!
//! 1. **constant grouping + pre-calculation**: at each `Sum`/`Prod` level
//!    the constant children are gathered and evaluated, leaving at most
//!    one constant per level (`1 + a + 2 + 11` → `14 + a`);
//! 2. **shortcut elimination**: identities are removed iteratively —
//!    `+a` (singleton sums), `0 + a`, `1 × a`, and fully-constant
//!    `Div`/`Mod` subtrees (`1 + a + 2 − 3` → `a`, so no kernel is
//!    generated at all; `0.25 × (a+b) × 4` → `a + b`);
//! 3. **compile-time constant conversion & alignment**: remaining
//!    constants are typed by their value ("1.23 is DECIMAL(3, 2)") and
//!    pre-aligned to the smallest strictly-greater sibling scale (Fig. 7
//!    casts 2.23 `DECIMAL(3,2)` to 2.230 `DECIMAL(4,3)`), removing the
//!    per-tuple alignment from the kernel.

use crate::nary::NExpr;
use up_num::{DecimalType, UpDecimal};

/// Applies constant grouping, pre-calculation and shortcut elimination.
pub fn fold_constants(n: NExpr) -> NExpr {
    match n {
        NExpr::Sum(children) => {
            let children: Vec<NExpr> = children.into_iter().map(fold_constants).collect();
            // Re-flatten: folding may have exposed nested sums.
            let mut flat = Vec::with_capacity(children.len());
            for c in children {
                match c {
                    NExpr::Sum(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            let (consts, mut rest): (Vec<NExpr>, Vec<NExpr>) =
                flat.into_iter().partition(|c| matches!(c, NExpr::Const(_)));
            if !consts.is_empty() {
                let mut acc: Option<UpDecimal> = None;
                for c in consts {
                    let NExpr::Const(v) = c else { unreachable!() };
                    acc = Some(match acc {
                        None => v,
                        Some(a) => tighten(a.add(&v)),
                    });
                }
                let folded = acc.expect("at least one const");
                // Shortcut 0 + a: drop a zero constant unless it is the
                // whole sum.
                if !folded.is_zero() || rest.is_empty() {
                    rest.push(NExpr::Const(folded));
                }
            }
            match rest.len() {
                0 => unreachable!("sum kept at least one child"),
                1 => rest.pop().expect("singleton"), // shortcut "+a"
                _ => NExpr::Sum(rest),
            }
        }
        NExpr::Prod(children) => {
            let children: Vec<NExpr> = children.into_iter().map(fold_constants).collect();
            let mut flat = Vec::with_capacity(children.len());
            for c in children {
                match c {
                    NExpr::Prod(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            let (consts, mut rest): (Vec<NExpr>, Vec<NExpr>) =
                flat.into_iter().partition(|c| matches!(c, NExpr::Const(_)));
            if !consts.is_empty() {
                let mut acc: Option<UpDecimal> = None;
                for c in consts {
                    let NExpr::Const(v) = c else { unreachable!() };
                    acc = Some(match acc {
                        None => v,
                        Some(a) => tighten(a.mul(&v)),
                    });
                }
                let folded = acc.expect("at least one const");
                if folded.is_zero() {
                    // 0 × anything — the whole product is a constant zero.
                    return NExpr::Const(folded);
                }
                // Shortcut 1 × a: drop a unit constant unless it is the
                // whole product.
                if !is_one(&folded) || rest.is_empty() {
                    rest.push(NExpr::Const(folded));
                }
            }
            match rest.len() {
                0 => unreachable!("prod kept at least one child"),
                1 => rest.pop().expect("singleton"),
                _ => NExpr::Prod(rest),
            }
        }
        NExpr::Neg(x) => match fold_constants(*x) {
            NExpr::Const(c) => NExpr::Const(c.neg()),
            other => NExpr::Neg(Box::new(other)),
        },
        NExpr::Div(a, b) => {
            let (a, b) = (fold_constants(*a), fold_constants(*b));
            if let (NExpr::Const(ca), NExpr::Const(cb)) = (&a, &b) {
                if let Ok(q) = ca.div(cb) {
                    return NExpr::Const(q);
                }
            }
            NExpr::Div(Box::new(a), Box::new(b))
        }
        NExpr::Mod(a, b) => {
            let (a, b) = (fold_constants(*a), fold_constants(*b));
            if let (NExpr::Const(ca), NExpr::Const(cb)) = (&a, &b) {
                if let Ok(r) = ca.rem(cb) {
                    return NExpr::Const(r);
                }
            }
            NExpr::Mod(Box::new(a), Box::new(b))
        }
        leaf => leaf,
    }
}

/// Pre-aligns each `Sum`'s remaining constant to the minimum sibling scale
/// strictly greater than its own (Fig. 7: 2.23 → 2.230 when a scale-3
/// sibling exists), so the kernel never aligns the constant at runtime.
pub fn prealign_constants(n: NExpr) -> NExpr {
    match n {
        NExpr::Sum(children) => {
            let scales: Vec<u32> = children.iter().map(NExpr::scale).collect();
            let children = children
                .into_iter()
                .enumerate()
                .map(|(i, c)| {
                    let c = prealign_constants(c);
                    if let NExpr::Const(v) = &c {
                        let my = v.dtype().scale;
                        let target = scales
                            .iter()
                            .enumerate()
                            .filter(|&(j, &s)| j != i && s > my)
                            .map(|(_, &s)| s)
                            .min();
                        if let Some(t) = target {
                            let ty = DecimalType::new_unchecked(
                                v.dtype().precision + (t - my),
                                t,
                            );
                            if let Ok(cast) = v.cast(ty) {
                                return NExpr::Const(cast);
                            }
                        }
                    }
                    c
                })
                .collect();
            NExpr::Sum(children)
        }
        NExpr::Prod(children) => {
            NExpr::Prod(children.into_iter().map(prealign_constants).collect())
        }
        NExpr::Neg(x) => NExpr::Neg(Box::new(prealign_constants(*x))),
        NExpr::Div(a, b) => NExpr::Div(
            Box::new(prealign_constants(*a)),
            Box::new(prealign_constants(*b)),
        ),
        NExpr::Mod(a, b) => NExpr::Mod(
            Box::new(prealign_constants(*a)),
            Box::new(prealign_constants(*b)),
        ),
        leaf => leaf,
    }
}

/// Re-types a computed constant to its value's minimal type ("the
/// remaining constants are converted to DECIMAL based on their value",
/// §III-D2) — folding `1 + 2 + 11` through the §III-B3 add rule would
/// otherwise leave 14 typed as a wide intermediate.
fn tighten(v: UpDecimal) -> UpDecimal {
    let digits = v.unscaled().dec_digits().max(1);
    let scale = v.dtype().scale;
    let ty = DecimalType::new_unchecked(digits.max(scale + u32::from(digits <= scale)), scale);
    UpDecimal::from_parts_unchecked(v.unscaled().clone(), ty)
}

fn is_one(v: &UpDecimal) -> bool {
    let one = UpDecimal::parse_literal("1").expect("literal 1");
    v.cmp_value(&one) == core::cmp::Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use up_num::DecimalType;

    fn ty(p: u32, s: u32) -> DecimalType {
        DecimalType::new_unchecked(p, s)
    }

    fn a() -> Expr {
        Expr::col(0, ty(12, 10), "a")
    }

    fn b() -> Expr {
        Expr::col(1, ty(12, 10), "b")
    }

    fn fold(e: &Expr) -> NExpr {
        fold_constants(NExpr::from_expr(e))
    }

    #[test]
    fn fig12_first_case_1_a_2_11() {
        // 1 + a + 2 + 11 → 14 + a ("we reduce 3 additions to 1").
        let e = Expr::lit("1")
            .unwrap()
            .add(a())
            .add(Expr::lit("2").unwrap())
            .add(Expr::lit("11").unwrap());
        let n = fold(&e);
        match &n {
            NExpr::Sum(children) => {
                assert_eq!(children.len(), 2);
                let c = children
                    .iter()
                    .find_map(|c| match c {
                        NExpr::Const(v) => Some(v),
                        _ => None,
                    })
                    .expect("folded const");
                assert_eq!(c.to_string(), "14");
                assert_eq!(c.dtype(), ty(2, 0)); // re-typed by value
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(n.to_expr().op_count(), 1);
    }

    #[test]
    fn fig12_second_case_reduces_to_bare_column() {
        // 1 + a + 2 − 3 → a ("no GPU kernel is generated").
        let e = Expr::lit("1")
            .unwrap()
            .add(a())
            .add(Expr::lit("2").unwrap())
            .sub(Expr::lit("3").unwrap());
        let n = fold(&e);
        assert!(matches!(n, NExpr::Col { .. }), "{n:?}");
    }

    #[test]
    fn fig12_third_case_unit_product() {
        // 0.25 × (a + b) × 4 → a + b ("we actually evaluate a+b").
        let e = Expr::lit("0.25").unwrap().mul(a().add(b())).mul(Expr::lit("4").unwrap());
        let n = fold(&e);
        match &n {
            NExpr::Sum(children) => assert_eq!(children.len(), 2),
            other => panic!("{other:?}"),
        }
        assert_eq!(n.to_expr().op_count(), 1);
    }

    #[test]
    fn fig7_shortcut_0_plus_c() {
        // b × (5 + c − 5): the inner sum folds to 0 + c → c.
        let c = Expr::col(2, ty(12, 3), "c");
        let e = b().mul(Expr::lit("5").unwrap().add(c).sub(Expr::lit("5").unwrap()));
        let n = fold(&e);
        match &n {
            NExpr::Prod(children) => {
                assert_eq!(children.len(), 2);
                assert!(children.iter().all(|c| matches!(c, NExpr::Col { .. })));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fig7_full_pipeline_with_prealignment() {
        // 1 + a + b×(5 + c − 5) + d + 1.23 → Sum[a, Prod[b,c], d, 2.230].
        let e = Expr::lit("1")
            .unwrap()
            .add(Expr::col(0, ty(12, 1), "a"))
            .add(
                Expr::col(1, ty(12, 2), "b")
                    .mul(Expr::lit("5").unwrap().add(Expr::col(2, ty(12, 1), "c")).sub(Expr::lit("5").unwrap())),
            )
            .add(Expr::col(3, ty(12, 2), "d"))
            .add(Expr::lit("1.23").unwrap());
        let n = prealign_constants(fold(&e));
        match &n {
            NExpr::Sum(children) => {
                assert_eq!(children.len(), 4);
                let c = children
                    .iter()
                    .find_map(|c| match c {
                        NExpr::Const(v) => Some(v),
                        _ => None,
                    })
                    .expect("const child");
                // 1 + 1.23 = 2.23 in (3,2), pre-aligned to the Prod's
                // strictly greater scale 3 → 2.230 in (4,3), as Fig. 7.
                assert_eq!(c.to_string(), "2.230");
                assert_eq!(c.dtype(), ty(4, 3));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn folding_preserves_value() {
        let e = Expr::lit("1")
            .unwrap()
            .add(a())
            .add(Expr::lit("2").unwrap())
            .add(Expr::lit("11").unwrap());
        let n = fold(&e).to_expr();
        let row = vec![up_num::UpDecimal::parse("-7.0000000001", ty(12, 10)).unwrap()];
        let v1 = e.eval_row(&row).unwrap();
        let v2 = n.eval_row(&row).unwrap();
        assert_eq!(v1.cmp_value(&v2), core::cmp::Ordering::Equal);
    }

    #[test]
    fn zero_product_collapses() {
        let e = a().mul(Expr::lit("0").unwrap()).mul(b());
        let n = fold(&e);
        match n {
            NExpr::Const(c) => assert!(c.is_zero()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn const_division_precomputes() {
        // a + 10/4 → a + 2.5000 (division folds with the scale+4 rule).
        let e = a().add(Expr::lit("10").unwrap().div(Expr::lit("4").unwrap()));
        let n = fold(&e);
        match &n {
            NExpr::Sum(children) => {
                let c = children
                    .iter()
                    .find_map(|c| match c {
                        NExpr::Const(v) => Some(v),
                        _ => None,
                    })
                    .expect("const");
                assert_eq!(c.to_string(), "2.5000");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn div_by_zero_constant_is_left_for_runtime() {
        let e = a().div(Expr::lit("0").unwrap());
        let n = fold(&e);
        assert!(matches!(n, NExpr::Div(_, _)));
    }
}
