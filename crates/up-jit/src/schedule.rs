//! Alignment scheduling — step 4 of §III-D1.
//!
//! Two `DECIMAL`s with different scales must be aligned (×10ᵏ) before an
//! addition; a left-fold over addends sorted by ascending scale performs
//! the minimum number of alignments (Fig. 6 reduces 3 to 1). This module
//! sorts `Sum` children by scale and provides [`alignment_count`], which
//! counts the runtime alignment multiplications a given evaluation order
//! incurs — the quantity Fig. 10 measures.

use crate::expr::Expr;
use crate::nary::NExpr;

/// Sorts every `Sum`'s children by ascending scale, recursively (stable,
/// so equal-scale operands keep query order).
pub fn schedule_alignment(n: NExpr) -> NExpr {
    match n {
        NExpr::Sum(mut children) => {
            children = children.into_iter().map(schedule_alignment).collect();
            children.sort_by_key(|c| c.scale());
            NExpr::Sum(children)
        }
        NExpr::Prod(children) => {
            NExpr::Prod(children.into_iter().map(schedule_alignment).collect())
        }
        NExpr::Neg(x) => NExpr::Neg(Box::new(schedule_alignment(*x))),
        NExpr::Div(a, b) => NExpr::Div(
            Box::new(schedule_alignment(*a)),
            Box::new(schedule_alignment(*b)),
        ),
        NExpr::Mod(a, b) => NExpr::Mod(
            Box::new(schedule_alignment(*a)),
            Box::new(schedule_alignment(*b)),
        ),
        leaf => leaf,
    }
}

/// Counts the alignment operations a binary tree performs at runtime: one
/// per addition/subtraction whose operands' scales differ (each such node
/// multiplies the smaller-scale side by a power of ten, §II-B).
pub fn alignment_count(e: &Expr) -> usize {
    match e {
        Expr::Col { .. } | Expr::Const(_) => 0,
        Expr::Neg(x) => alignment_count(x),
        Expr::Add(a, b) | Expr::Sub(a, b) => {
            let here = usize::from(a.dtype().scale != b.dtype().scale);
            here + alignment_count(a) + alignment_count(b)
        }
        Expr::Mul(a, b) => alignment_count(a) + alignment_count(b),
        Expr::Div(a, b) | Expr::Mod(a, b) => alignment_count(a) + alignment_count(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use up_num::DecimalType;

    fn ty(p: u32, s: u32) -> DecimalType {
        DecimalType::new_unchecked(p, s)
    }

    fn a(s: u32) -> Expr {
        Expr::col(0, ty(12, s), "a")
    }

    fn b(s: u32) -> Expr {
        Expr::col(1, ty(17, s), "b")
    }

    /// Builds `a + b + a + a + …` with `n_a` copies of `a` (Fig. 10's
    /// expressions with the `b` inserted second).
    fn fig10_expr(n_a: usize) -> Expr {
        let mut e = a(1).add(b(11));
        for _ in 1..n_a {
            e = e.add(a(1));
        }
        e
    }

    #[test]
    fn fig10_alignment_reduction() {
        // Unscheduled: a+b+a → 2, five-a → 4, seven-a → 6 alignments.
        for (n_a, unsched) in [(2, 2), (4, 4), (6, 6)] {
            let e = fig10_expr(n_a);
            assert_eq!(alignment_count(&e), unsched, "n_a={n_a}");
            // Scheduled: always 1 ("the alignment operations are reduced
            // to 1 from 2, 4, and 6 times").
            let s = schedule_alignment(NExpr::from_expr(&e)).to_expr();
            assert_eq!(alignment_count(&s), 1, "n_a={n_a}");
        }
    }

    #[test]
    fn fig6_reduction_from_3_to_1() {
        // a(2) + b(5)×c(5) + d(2) − e(2): unscheduled the product (scale
        // 10) joins first, forcing alignments at every later addition.
        let e = a(2)
            .add(Expr::col(1, ty(12, 5), "b").mul(Expr::col(2, ty(12, 5), "c")))
            .add(Expr::col(3, ty(12, 2), "d"))
            .sub(Expr::col(4, ty(12, 2), "e"));
        assert_eq!(alignment_count(&e), 3);
        let s = schedule_alignment(NExpr::from_expr(&e)).to_expr();
        assert_eq!(alignment_count(&s), 1);
    }

    #[test]
    fn scheduling_preserves_value() {
        let e = fig10_expr(4);
        let s = schedule_alignment(NExpr::from_expr(&e)).to_expr();
        let row = vec![
            up_num::UpDecimal::parse("-3.5", ty(12, 1)).unwrap(),
            up_num::UpDecimal::parse("0.00000000007", ty(17, 11)).unwrap(),
        ];
        let v1 = e.eval_row(&row).unwrap();
        let v2 = s.eval_row(&row).unwrap();
        assert_eq!(v1.cmp_value(&v2), core::cmp::Ordering::Equal);
    }

    #[test]
    fn equal_scales_need_no_alignment() {
        let e = a(3).add(Expr::col(1, ty(9, 3), "x")).add(Expr::col(2, ty(4, 3), "y"));
        assert_eq!(alignment_count(&e), 0);
        let s = schedule_alignment(NExpr::from_expr(&e)).to_expr();
        assert_eq!(alignment_count(&s), 0);
    }

    #[test]
    fn stable_sort_keeps_query_order_within_scale() {
        let e = a(1).add(Expr::col(1, ty(12, 1), "x")).add(b(11));
        if let NExpr::Sum(children) = schedule_alignment(NExpr::from_expr(&e)) {
            match (&children[0], &children[1]) {
                (NExpr::Col { name: n0, .. }, NExpr::Col { name: n1, .. }) => {
                    assert_eq!((n0.as_str(), n1.as_str()), ("a", "x"));
                }
                other => panic!("{other:?}"),
            }
        } else {
            panic!("expected Sum");
        }
    }
}
