//! Multi-threaded (TPI) expression kernels — §III-E1, Listing 3.
//!
//! When operands get wide, one thread per tuple wastes registers and
//! serializes memory traffic; UltraPrecise instead assigns a *thread
//! group* of `TPI` threads to each expression instance, building on the
//! extended CGBN library. Compilation here produces:
//!
//! * a [`LoadPlan`] per input column — the Listing 3 cooperative load:
//!   each thread reads `lt = ceil(Lb/(4·TPI))` words, with a tail branch
//!   only when the compact array is not TPI-aligned;
//! * an [`MtKernel`] that evaluates rows through the thread-group
//!   arithmetic of [`up_gpusim::cgbn`] (bit-exact) while accumulating the
//!   partition-aware cost model those group operations define.

use crate::expr::Expr;
use up_gpusim::cgbn::{self, GroupCost, GroupError, GroupOp, Tpi};
use up_num::{DecimalType, NumError, UpDecimal};

/// The cooperative load of one compact column into a thread group
/// (Listing 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadPlan {
    /// Compact bytes per value (`Lb`).
    pub lb: usize,
    /// Words per thread (`lt`).
    pub lt: usize,
    /// Threads performing a full `lt`-word copy.
    pub full_threads: usize,
    /// Bytes the trailing thread copies (0 = no tail).
    pub tail_bytes: usize,
    /// Whether the generated code needs the tail branch ("the branch code
    /// is not generated if the compact representation is aligned to TPI").
    pub needs_branch: bool,
}

impl LoadPlan {
    /// Plans the load of a `ty` column at `tpi`.
    pub fn new(ty: DecimalType, tpi: Tpi) -> LoadPlan {
        let lb = ty.lb();
        let lt = tpi.words_per_thread(lb);
        let (full_threads, tail_bytes) = tpi.full_load_threads(lb);
        LoadPlan {
            lb,
            lt,
            full_threads,
            tail_bytes,
            needs_branch: tail_bytes != 0 || full_threads < tpi.0 as usize,
        }
    }

    /// Renders the Listing 3-shaped CUDA source for documentation and
    /// golden tests.
    pub fn render_cuda(&self, tpi: Tpi) -> String {
        let mut s = String::new();
        s.push_str(&format!("int g_tid = threadIdx.x & {}; // TPI-1\n", tpi.0 - 1));
        s.push_str(&format!(
            "int tid = (blockIdx.x * blockDim.x + threadIdx.x) / {};\n",
            tpi.0
        ));
        s.push_str("if(tid >= tupleNum) return;\n\n");
        s.push_str(&format!("uint32_t v[{}]; // lt = {}\n", self.lt, self.lt));
        let chunk = self.lt * 4;
        if self.needs_branch {
            s.push_str(&format!("if(g_tid < {}) // Lb/(lt*4) = {}\n", self.full_threads, self.full_threads));
            s.push_str(&format!(
                "  memcopy(v, input[0][tid] + g_tid * {chunk}, {chunk});\n"
            ));
            if self.tail_bytes != 0 {
                s.push_str(&format!("else if(g_tid == {})\n", self.full_threads));
                s.push_str(&format!(
                    "  memcopy(v, input[0][tid] + g_tid * {chunk}, {}); // Lb%(lt*4)\n",
                    self.tail_bytes
                ));
            }
        } else {
            s.push_str(&format!(
                "memcopy(v, input[0][tid] + g_tid * {chunk}, {chunk});\n"
            ));
        }
        s
    }
}

/// A compiled multi-threaded expression kernel.
#[derive(Clone, Debug)]
pub struct MtKernel {
    /// Threads per instance.
    pub tpi: Tpi,
    /// The (already optimized) expression.
    pub expr: Expr,
    /// Result type.
    pub out_ty: DecimalType,
    /// Cooperative load plan per distinct input column (by column index).
    pub load_plans: Vec<(usize, LoadPlan)>,
    /// Estimated hardware registers per thread (drives occupancy).
    pub hw_regs: u32,
}

/// Errors from multi-threaded evaluation.
#[derive(Debug)]
pub enum MtError {
    /// A group-arithmetic restriction or runtime failure.
    Group(GroupError),
    /// A scalar evaluation failure (e.g. division by zero in a constant).
    Num(NumError),
}

impl From<GroupError> for MtError {
    fn from(e: GroupError) -> Self {
        MtError::Group(e)
    }
}

impl From<NumError> for MtError {
    fn from(e: NumError) -> Self {
        MtError::Num(e)
    }
}

impl core::fmt::Display for MtError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MtError::Group(e) => write!(f, "group arithmetic: {e}"),
            MtError::Num(e) => write!(f, "numeric: {e}"),
        }
    }
}

impl std::error::Error for MtError {}

/// Compiles an expression for TPI-group evaluation.
pub fn compile_expr_mt(expr: &Expr, tpi: Tpi) -> MtKernel {
    let out_ty = expr.dtype();
    let load_plans = collect_col_types(expr)
        .into_iter()
        .map(|(idx, ty)| (idx, LoadPlan::new(ty, tpi)))
        .collect();
    MtKernel {
        tpi,
        expr: expr.clone(),
        out_ty,
        load_plans,
        hw_regs: cgbn::group_hw_regs(out_ty.lw(), tpi),
    }
}

fn collect_col_types(e: &Expr) -> Vec<(usize, DecimalType)> {
    let mut out: Vec<(usize, DecimalType)> = Vec::new();
    fn walk(e: &Expr, out: &mut Vec<(usize, DecimalType)>) {
        match e {
            Expr::Col { index, ty, .. } => {
                if !out.iter().any(|(i, _)| i == index) {
                    out.push((*index, *ty));
                }
            }
            Expr::Const(_) => {}
            Expr::Neg(x) => walk(x, out),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Mod(a, b) => {
                walk(a, out);
                walk(b, out);
            }
        }
    }
    walk(e, &mut out);
    out.sort_by_key(|(i, _)| *i);
    out
}

impl MtKernel {
    /// Evaluates the expression over rows with thread-group arithmetic,
    /// returning results plus the aggregate group cost. Results are
    /// bit-identical to [`Expr::eval_row`]; the cost reflects the TPI
    /// work partitioning.
    pub fn eval_rows(&self, rows: &[Vec<UpDecimal>]) -> Result<(Vec<UpDecimal>, GroupCost), MtError> {
        let mut cost = GroupCost::default();
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            let (v, c) = self.eval_node(&self.expr, row)?;
            merge(&mut cost, c);
            out.push(v);
        }
        Ok((out, cost))
    }

    fn eval_node(&self, e: &Expr, row: &[UpDecimal]) -> Result<(UpDecimal, GroupCost), MtError> {
        Ok(match e {
            Expr::Col { index, .. } => (row[*index].clone(), GroupCost::default()),
            Expr::Const(c) => (c.clone(), GroupCost::default()),
            Expr::Neg(x) => {
                let (v, c) = self.eval_node(x, row)?;
                (v.neg(), c)
            }
            Expr::Add(a, b) => self.binop(GroupOp::Add, a, b, row, false)?,
            Expr::Sub(a, b) => self.binop(GroupOp::Add, a, b, row, true)?,
            Expr::Mul(a, b) => self.binop(GroupOp::Mul, a, b, row, false)?,
            Expr::Div(a, b) => self.binop(GroupOp::Div, a, b, row, false)?,
            Expr::Mod(a, b) => {
                // CGBN has no modulo; UltraPrecise composes it from the
                // Newton–Raphson division (q = a/b; r = a − q·b).
                let (va, ca) = self.eval_node(a, row)?;
                let (vb, cb) = self.eval_node(b, row)?;
                let (_, cd) = cgbn::group_eval(GroupOp::Div, &va, &vb, self.tpi)?;
                let (_, cm) = cgbn::group_eval(GroupOp::Mul, &va, &vb, self.tpi)?;
                let r = va.rem(&vb)?;
                let mut c = ca;
                merge(&mut c, cb);
                merge(&mut c, cd);
                merge(&mut c, cm);
                (r, c)
            }
        })
    }

    fn binop(
        &self,
        op: GroupOp,
        a: &Expr,
        b: &Expr,
        row: &[UpDecimal],
        negate_b: bool,
    ) -> Result<(UpDecimal, GroupCost), MtError> {
        let (va, ca) = self.eval_node(a, row)?;
        let (vb, cb) = self.eval_node(b, row)?;
        let vb = if negate_b { vb.neg() } else { vb };
        let (r, c) = cgbn::group_eval(op, &va, &vb, self.tpi)?;
        let mut total = ca;
        merge(&mut total, cb);
        merge(&mut total, c);
        Ok((r, total))
    }
}

fn merge(into: &mut GroupCost, from: GroupCost) {
    into.insts_per_thread += from.insts_per_thread;
    into.shuffles += from.shuffles;
    into.ballots += from.ballots;
    into.bytes_read += from.bytes_read;
    into.bytes_written += from.bytes_written;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ty(p: u32, s: u32) -> DecimalType {
        DecimalType::new_unchecked(p, s)
    }

    #[test]
    fn listing3_render_matches_paper_example() {
        // DECIMAL(64, 32), TPI 4 → Lb 27, lt 2, 3 full threads + 3-byte
        // tail.
        let plan = LoadPlan::new(ty(64, 32), Tpi(4));
        assert_eq!(plan.lb, 27);
        assert_eq!(plan.lt, 2);
        assert_eq!(plan.full_threads, 3);
        assert_eq!(plan.tail_bytes, 3);
        assert!(plan.needs_branch);
        let code = plan.render_cuda(Tpi(4));
        assert!(code.contains("threadIdx.x & 3"));
        assert!(code.contains("uint32_t v[2]"));
        assert!(code.contains("if(g_tid < 3)"));
        assert!(code.contains("else if(g_tid == 3)"));
    }

    #[test]
    fn aligned_load_needs_no_branch() {
        // Pick a type whose Lb is a multiple of 4·lt·… : Lb = 16 at TPI 4
        // → lt = 1, 4 full threads, no tail.
        let t = ty(38, 10);
        assert_eq!(t.lb(), 16);
        let plan = LoadPlan::new(t, Tpi(4));
        assert_eq!((plan.lt, plan.full_threads, plan.tail_bytes), (1, 4, 0));
        assert!(!plan.needs_branch);
        assert!(!plan.render_cuda(Tpi(4)).contains("else if"));
    }

    #[test]
    fn mt_evaluation_matches_scalar_reference() {
        let t = ty(38, 10);
        let e = Expr::col(0, t, "a")
            .mul(Expr::col(1, t, "b"))
            .add(Expr::col(0, t, "a"))
            .sub(Expr::lit("0.5").unwrap());
        let k = compile_expr_mt(&e, Tpi(8));
        let rows: Vec<Vec<UpDecimal>> = (0..20)
            .map(|i| {
                vec![
                    UpDecimal::from_scaled_i64((i as i64 - 10) * 1_000_003, t).unwrap(),
                    UpDecimal::from_scaled_i64(i as i64 * 7_777_777 + 1, t).unwrap(),
                ]
            })
            .collect();
        let (got, cost) = k.eval_rows(&rows).unwrap();
        for (i, row) in rows.iter().enumerate() {
            let want = e.eval_row(row).unwrap();
            assert_eq!(got[i].cmp_value(&want), core::cmp::Ordering::Equal, "row {i}");
        }
        assert!(cost.insts_per_thread > 0.0);
        assert!(cost.bytes_read > 0);
    }

    #[test]
    fn load_plans_cover_all_columns_once() {
        let t = ty(20, 2);
        let e = Expr::col(1, t, "b").add(Expr::col(0, t, "a")).add(Expr::col(1, t, "b"));
        let k = compile_expr_mt(&e, Tpi(4));
        let idxs: Vec<usize> = k.load_plans.iter().map(|(i, _)| *i).collect();
        assert_eq!(idxs, vec![0, 1]);
    }
}
