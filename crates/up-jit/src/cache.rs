//! The JIT engine: optimization pipeline, shared kernel cache, and
//! compile-time accounting.
//!
//! Expressions are optimized (§III-D), compiled to kernels (§III-B2), and
//! cached by structural signature so repeated queries skip compilation.
//! The cache is a thread-safe, lock-striped LRU ([`SharedKernelCache`])
//! that can be shared across many engines via `Arc` — the way RateupDB's
//! server lets concurrent sessions reuse each other's compiled artifacts.
//! Compile time is reported two ways: the *actual* time this Rust code
//! spent building the IR (microseconds) and the *modeled* NVCC latency a
//! real deployment pays (§IV-D1 reports 320–423 ms for TPC-H Q1), so
//! harnesses can report the same compile/execute split the paper does.

use crate::codegen::{compile_expr_with, CodegenOptions, CompiledExpr};
use crate::constfold::{fold_constants, prealign_constants};
use crate::expr::Expr;
use crate::nary::NExpr;
use crate::schedule::schedule_alignment;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use up_gpusim::cost::modeled_compile_time_s;

/// Which §III-D rewrites run before code generation. All on by default;
/// the Fig. 10–12 ablation harnesses toggle them individually.
#[derive(Clone, Copy, Debug)]
pub struct JitOptions {
    /// Alignment scheduling (§III-D1).
    pub schedule_alignment: bool,
    /// Constant grouping + pre-calculation and shortcuts (§III-D2).
    pub fold_constants: bool,
    /// Compile-time constant alignment (Fig. 7's final step).
    pub prealign_constants: bool,
}

impl Default for JitOptions {
    fn default() -> Self {
        JitOptions { schedule_alignment: true, fold_constants: true, prealign_constants: true }
    }
}

impl JitOptions {
    /// Every optimization disabled — the ablation baseline.
    pub fn none() -> Self {
        JitOptions { schedule_alignment: false, fold_constants: false, prealign_constants: false }
    }
}

/// Compilation outcome: a kernel, or nothing to run at all.
#[derive(Clone, Debug)]
pub enum Compiled {
    /// A generated kernel.
    Kernel(Arc<CompiledExpr>),
    /// The optimized expression is a bare column or constant — "no GPU
    /// kernel is generated" (§IV-B3's `1+a+2−3` case). The engine copies
    /// or broadcasts instead.
    Passthrough(Expr),
}

/// Metadata of one compile request.
#[derive(Clone, Copy, Debug)]
pub struct CompileInfo {
    /// Served from the kernel cache.
    pub cached: bool,
    /// Seconds this process actually spent optimizing + building IR.
    pub build_s: f64,
    /// Modeled NVCC compile latency (0 when cached or passthrough).
    pub modeled_compile_s: f64,
}

/// Point-in-time kernel-cache counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Compile requests served from the cache.
    pub hits: u64,
    /// Compile requests that built a new kernel.
    pub misses: u64,
    /// Entries dropped by the LRU capacity bound.
    pub evictions: u64,
    /// Kernels currently resident.
    pub entries: usize,
    /// Total capacity across all shards.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction of all lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Default capacity of a per-engine cache (kernels, not bytes — compiled
/// IR is small; the bound exists to keep long-lived services from
/// accumulating every signature ever seen).
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// Default lock-stripe count for shared caches.
pub const DEFAULT_CACHE_SHARDS: usize = 8;

struct Entry {
    kernel: Arc<CompiledExpr>,
    last_use: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<String, Entry>,
    tick: u64,
}

/// A thread-safe kernel cache: lock-striped over signature hash, each
/// shard an LRU bounded at `capacity / shards` entries. Cloning the `Arc`
/// and handing it to several [`JitEngine`]s makes concurrent sessions
/// reuse each other's compiled kernels — compilation happens at most once
/// per distinct signature (the compiling thread holds its shard's lock,
/// so a racing lookup waits and then hits).
pub struct SharedKernelCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    next_id: AtomicU64,
}

impl SharedKernelCache {
    /// New cache bounded at roughly `capacity` kernels over the default
    /// stripe count.
    pub fn new(capacity: usize) -> SharedKernelCache {
        Self::with_shards(capacity, DEFAULT_CACHE_SHARDS)
    }

    /// New cache with an explicit stripe count (1 = exact global LRU,
    /// useful for deterministic tests; more stripes = less contention).
    pub fn with_shards(capacity: usize, shards: usize) -> SharedKernelCache {
        let shards = shards.max(1);
        let shard_capacity = capacity.div_ceil(shards).max(1);
        SharedKernelCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, sig: &str) -> &Mutex<Shard> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        sig.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Looks up `sig`, compiling and inserting on a miss. `build` receives
    /// a process-unique kernel id. Returns the kernel and whether it was
    /// served from cache. The shard lock is held across `build`, which
    /// guarantees at most one compilation per distinct signature even
    /// under races.
    pub fn get_or_compile(
        &self,
        sig: &str,
        build: impl FnOnce(u64) -> CompiledExpr,
    ) -> (Arc<CompiledExpr>, bool) {
        let mut shard = self.shard_of(sig).lock().expect("kernel cache poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(e) = shard.map.get_mut(sig) {
            e.last_use = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(&e.kernel), true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let kernel = Arc::new(build(id));
        shard.map.insert(sig.to_string(), Entry { kernel: Arc::clone(&kernel), last_use: tick });
        if shard.map.len() > self.shard_capacity {
            // Evict the least-recently-used entry of this shard.
            if let Some(lru) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        (kernel, false)
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("kernel cache poisoned").map.len())
                .sum(),
            capacity: self.shard_capacity * self.shards.len(),
        }
    }
}

/// The JIT compilation engine over a (possibly shared) kernel cache.
///
/// All methods take `&self`: cache and counters use interior mutability,
/// so one engine can serve concurrent read-only queries. A default engine
/// owns a private cache; [`JitEngine::with_cache`] plugs in a shared one.
pub struct JitEngine {
    opts: JitOptions,
    cache: Arc<SharedKernelCache>,
    /// When set, a cache-missing `compile` *sleeps* its modeled NVCC
    /// latency so host wall-clock reflects the compile stalls a real RTC
    /// deployment pays (functional results and modeled times are
    /// unchanged). Off by default; the pipelining benchmark turns it on
    /// to measure how much of that latency overlap can hide.
    emulate_nvcc: bool,
}

impl JitEngine {
    /// New engine with the given optimization switches and a private,
    /// bounded kernel cache.
    pub fn new(opts: JitOptions) -> JitEngine {
        Self::with_cache(opts, Arc::new(SharedKernelCache::new(DEFAULT_CACHE_CAPACITY)))
    }

    /// New engine with all optimizations on.
    pub fn with_defaults() -> JitEngine {
        Self::new(JitOptions::default())
    }

    /// New engine over an existing (shared) kernel cache.
    pub fn with_cache(opts: JitOptions, cache: Arc<SharedKernelCache>) -> JitEngine {
        JitEngine { opts, cache, emulate_nvcc: false }
    }

    /// Toggles NVCC-latency emulation: when on, every cache-missing
    /// compile sleeps its modeled NVCC time (§IV-D1's 320–423 ms scale)
    /// so benchmarks can measure compile/execute overlap in wall-clock.
    pub fn set_nvcc_latency_emulation(&mut self, on: bool) {
        self.emulate_nvcc = on;
    }

    /// Whether NVCC-latency emulation is on.
    pub fn nvcc_latency_emulation(&self) -> bool {
        self.emulate_nvcc
    }

    /// A handle to this engine's kernel cache (clone to share it with
    /// other engines).
    pub fn cache_handle(&self) -> Arc<SharedKernelCache> {
        Arc::clone(&self.cache)
    }

    /// The optimization switches in effect.
    pub fn options(&self) -> JitOptions {
        self.opts
    }

    /// Runs the §III-D optimization pipeline on an expression.
    pub fn optimize(&self, expr: &Expr) -> Expr {
        let mut n = NExpr::from_expr(expr);
        if self.opts.fold_constants {
            n = fold_constants(n);
        }
        if self.opts.schedule_alignment {
            n = schedule_alignment(n);
        }
        if self.opts.prealign_constants {
            n = prealign_constants(n);
        }
        n.to_expr()
    }

    /// The cache key `compile` uses for an already-optimized expression.
    fn sig_of(&self, optimized: &Expr) -> String {
        format!("{}|rtc={}", optimized.signature(), !self.opts.fold_constants)
    }

    /// The cache signature [`JitEngine::compile`] would use for `expr`,
    /// or `None` when the optimized expression is a passthrough (bare
    /// column / constant — never compiled, never cached). The plan-level
    /// pipeline uses this to detect duplicate kernels across DAG nodes
    /// *before* execution, so compile attribution stays deterministic.
    pub fn signature(&self, expr: &Expr) -> Option<String> {
        let optimized = self.optimize(expr);
        match optimized {
            Expr::Col { .. } | Expr::Const(_) => None,
            e => Some(self.sig_of(&e)),
        }
    }

    /// Optimizes and compiles an expression, consulting the cache.
    pub fn compile(&self, expr: &Expr) -> (Compiled, CompileInfo) {
        let t0 = Instant::now();
        let optimized = self.optimize(expr);
        match optimized {
            Expr::Col { .. } | Expr::Const(_) => {
                let info = CompileInfo {
                    cached: false,
                    build_s: t0.elapsed().as_secs_f64(),
                    modeled_compile_s: 0.0,
                };
                (Compiled::Passthrough(optimized), info)
            }
            e => {
                let copts = CodegenOptions {
                    // Without constant construction, literals convert to
                    // DECIMAL per tuple inside the kernel (§III-D2).
                    runtime_const_conversion: !self.opts.fold_constants,
                };
                let sig = self.sig_of(&e);
                let (compiled, cached) = self.cache.get_or_compile(&sig, |id| {
                    let name = format!("calc_expr_{id}");
                    compile_expr_with(&e, &name, copts)
                });
                let modeled = if cached {
                    0.0
                } else {
                    // `static_inst_count` also builds the kernel's decoded
                    // program (cached on the kernel), so decode happens
                    // once here at compile time and every cache hit —
                    // local or via the shared server cache — reuses it.
                    // The closure-compiled tier is deliberately *not*
                    // built here: cold kernels stay on the decoded
                    // interpreter, and tier promotion (launch-count
                    // crossing `up_gpusim::tier_threshold`) builds the
                    // artifact into the same cached kernel's
                    // `OnceLock<Arc>`, so one promotion serves every
                    // session that hits this cache entry — including
                    // arena rendezvous winners and waiters.
                    modeled_compile_time_s(compiled.kernel.static_inst_count())
                };
                if !cached && self.emulate_nvcc && modeled > 0.0 {
                    // Outside the shard lock: concurrent compiles of
                    // *other* signatures proceed while this one "runs
                    // NVCC". Wall-clock only — modeled time is already
                    // accounted above.
                    std::thread::sleep(std::time::Duration::from_secs_f64(modeled));
                }
                let info = CompileInfo {
                    cached,
                    build_s: t0.elapsed().as_secs_f64(),
                    modeled_compile_s: modeled,
                };
                (Compiled::Kernel(compiled), info)
            }
        }
    }

    /// A new engine sharing this one's options, kernel cache, and NVCC
    /// emulation flag — what [`JitEngine::compile_async`] helpers and the
    /// cross-query compile arena ([`crate::arena`]) run their compiles
    /// on. Cache counters are shared, so a forked engine's compiles are
    /// indistinguishable from this engine's.
    pub fn fork(&self) -> JitEngine {
        let mut e = JitEngine::with_cache(self.opts, Arc::clone(&self.cache));
        e.emulate_nvcc = self.emulate_nvcc;
        e
    }

    /// Starts compiling `expr` on a helper thread and returns a handle to
    /// collect the result. The helper draws one token from the shared
    /// worker budget (`up_gpusim::par`) so concurrent `Auto` launches
    /// back off while it runs; like an explicit `Threads(n)` demand it
    /// spawns even when the budget is empty — a compile thread mostly
    /// waits on the (emulated) NVCC latency, not the CPU. Cache lookups,
    /// insertion, and counters behave exactly as a synchronous
    /// [`JitEngine::compile`] on this engine.
    pub fn compile_async(&self, expr: &Expr) -> CompileHandle {
        let token = up_gpusim::par::acquire_extra(1);
        let engine = self.fork();
        let expr = expr.clone();
        let join = std::thread::spawn(move || engine.compile(&expr));
        CompileHandle { join, _token: token }
    }

    /// Cache counters (hits, misses, evictions, occupancy).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// An in-flight [`JitEngine::compile_async`] compilation.
///
/// Dropping the handle without calling [`CompileHandle::wait`] detaches
/// the helper thread; the compiled kernel still lands in the shared
/// cache.
pub struct CompileHandle {
    join: std::thread::JoinHandle<(Compiled, CompileInfo)>,
    _token: up_gpusim::par::WorkerTokens,
}

impl CompileHandle {
    /// Blocks until compilation finishes and returns exactly what the
    /// synchronous [`JitEngine::compile`] would have.
    pub fn wait(self) -> (Compiled, CompileInfo) {
        self.join.join().expect("compile thread panicked")
    }

    /// Whether the compilation has already finished (non-blocking).
    pub fn is_done(&self) -> bool {
        self.join.is_finished()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use up_num::DecimalType;

    fn ty(p: u32, s: u32) -> DecimalType {
        DecimalType::new_unchecked(p, s)
    }

    #[test]
    fn cache_hits_on_identical_structure() {
        let jit = JitEngine::with_defaults();
        let e = Expr::col(0, ty(4, 2), "a").add(Expr::col(1, ty(4, 1), "b"));
        let (c1, i1) = jit.compile(&e);
        let (c2, i2) = jit.compile(&e);
        assert!(!i1.cached);
        assert!(i2.cached);
        assert!(i1.modeled_compile_s > 0.25); // NVCC front-end floor
        assert_eq!(i2.modeled_compile_s, 0.0);
        match (c1, c2) {
            (Compiled::Kernel(k1), Compiled::Kernel(k2)) => {
                assert!(Arc::ptr_eq(&k1, &k2));
            }
            _ => panic!("expected kernels"),
        }
        let s = jit.cache_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn cache_hits_share_the_decoded_program() {
        // Compiling builds the decoded program (via the compile-time
        // model's static_inst_count); hits must reuse it rather than
        // re-decoding per launch.
        let jit = JitEngine::with_defaults();
        let e = Expr::col(0, ty(6, 2), "a").mul(Expr::col(1, ty(6, 2), "b"));
        let (c1, _) = jit.compile(&e);
        let (c2, _) = jit.compile(&e);
        let (Compiled::Kernel(k1), Compiled::Kernel(k2)) = (c1, c2) else {
            panic!("expected kernels");
        };
        // Same Arc<CompiledExpr> → same kernel → same decoded program.
        // (Build/hit counters are process-global, so only pointer
        // identity is asserted here — counts would race other tests.)
        assert!(Arc::ptr_eq(k1.kernel.decoded_program(), k2.kernel.decoded_program()));
    }

    #[test]
    fn cache_hits_share_the_compiled_tier_artifact() {
        // Tier promotion builds the closure-compiled program into the
        // cached kernel's `OnceLock<Arc>`; because cache hits (and arena
        // rendezvous) hand out the same `Arc<CompiledExpr>`, one
        // promotion must serve every session. Forcing the build through
        // either handle must yield pointer-identical artifacts.
        let jit = JitEngine::with_defaults();
        let e = Expr::col(0, ty(6, 2), "a").add(Expr::col(1, ty(6, 2), "b"));
        let (c1, _) = jit.compile(&e);
        let (c2, _) = jit.compile(&e);
        let (Compiled::Kernel(k1), Compiled::Kernel(k2)) = (c1, c2) else {
            panic!("expected kernels");
        };
        // JIT compilation must NOT eagerly build the closure tier: cold
        // kernels stay on the decoded interpreter.
        assert!(!k1.kernel.compiled_tier_built());
        let p1 = k1.kernel.compiled_program().clone();
        // The build through k1 is visible through k2 — shared artifact.
        assert!(k2.kernel.compiled_tier_built());
        assert!(Arc::ptr_eq(&p1, k2.kernel.compiled_program()));
    }

    #[test]
    fn trivial_expression_generates_no_kernel() {
        // 1 + a + 2 − 3 → a (§IV-B3: "no GPU kernel is generated").
        let jit = JitEngine::with_defaults();
        let e = Expr::lit("1")
            .unwrap()
            .add(Expr::col(0, ty(12, 10), "a"))
            .add(Expr::lit("2").unwrap())
            .sub(Expr::lit("3").unwrap());
        let (c, info) = jit.compile(&e);
        assert!(matches!(c, Compiled::Passthrough(Expr::Col { .. })));
        assert_eq!(info.modeled_compile_s, 0.0);
    }

    #[test]
    fn optimizations_reduce_kernel_size() {
        let a = || Expr::col(0, ty(12, 10), "a");
        let e = Expr::lit("1")
            .unwrap()
            .add(a())
            .add(Expr::lit("2").unwrap())
            .add(Expr::lit("11").unwrap());
        let on = JitEngine::with_defaults();
        let off = JitEngine::new(JitOptions::none());
        let (k_on, _) = on.compile(&e);
        let (k_off, _) = off.compile(&e);
        let (Compiled::Kernel(k_on), Compiled::Kernel(k_off)) = (k_on, k_off) else {
            panic!("expected kernels");
        };
        assert!(
            k_on.kernel.static_inst_count() < k_off.kernel.static_inst_count(),
            "{} !< {}",
            k_on.kernel.static_inst_count(),
            k_off.kernel.static_inst_count()
        );
    }

    #[test]
    fn distinct_types_do_not_collide_in_cache() {
        let jit = JitEngine::with_defaults();
        let e1 = Expr::col(0, ty(4, 2), "a").add(Expr::col(1, ty(4, 1), "b"));
        let e2 = Expr::col(0, ty(9, 2), "a").add(Expr::col(1, ty(4, 1), "b"));
        jit.compile(&e1);
        let (_, i2) = jit.compile(&e2);
        assert!(!i2.cached);
        let s = jit.cache_stats();
        assert_eq!((s.hits, s.misses), (0, 2));
    }

    #[test]
    fn lru_capacity_bound_evicts_coldest() {
        // Single shard → exact LRU semantics.
        let cache = Arc::new(SharedKernelCache::with_shards(2, 1));
        let jit = JitEngine::with_cache(JitOptions::default(), cache);
        let exprs: Vec<Expr> = (1..=3)
            .map(|p| Expr::col(0, ty(4 + p, 2), "a").add(Expr::col(1, ty(4, 1), "b")))
            .collect();
        jit.compile(&exprs[0]); // cache: [0]
        jit.compile(&exprs[1]); // cache: [0, 1]
        jit.compile(&exprs[0]); // touch 0 → 1 is now LRU
        jit.compile(&exprs[2]); // evicts 1
        let s = jit.cache_stats();
        assert_eq!(s.evictions, 1, "{s:?}");
        assert_eq!(s.entries, 2);
        // 0 survived (hit), 1 was evicted (miss again), totals add up.
        let (_, i0) = jit.compile(&exprs[0]);
        assert!(i0.cached);
        let (_, i1) = jit.compile(&exprs[1]);
        assert!(!i1.cached);
        let s = jit.cache_stats();
        assert_eq!(s.misses, 4, "{s:?}"); // 3 distinct + 1 re-compile
    }

    #[test]
    fn shared_cache_compiles_each_signature_once_across_engines() {
        let cache = Arc::new(SharedKernelCache::new(64));
        let e = Expr::col(0, ty(6, 2), "a").mul(Expr::col(1, ty(6, 2), "b"));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&cache);
            let expr = e.clone();
            handles.push(std::thread::spawn(move || {
                let jit = JitEngine::with_cache(JitOptions::default(), c);
                let (compiled, _) = jit.compile(&expr);
                match compiled {
                    Compiled::Kernel(k) => Arc::as_ptr(&k) as usize,
                    _ => panic!("expected kernel"),
                }
            }));
        }
        let ptrs: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ptrs.windows(2).all(|w| w[0] == w[1]), "all threads share one kernel");
        let s = cache.stats();
        assert_eq!(s.misses, 1, "{s:?}"); // compiled exactly once
        assert_eq!(s.hits, 7, "{s:?}");
        assert!((s.hit_rate() - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn signature_matches_compile_routing() {
        let jit = JitEngine::with_defaults();
        // A real kernel has a signature; compiling it afterwards misses
        // once and a re-derived signature still matches the cached entry.
        let e = Expr::col(0, ty(6, 2), "a").mul(Expr::col(1, ty(6, 2), "b"));
        let sig = jit.signature(&e).expect("kernel expression has a signature");
        let (c, i) = jit.compile(&e);
        assert!(matches!(c, Compiled::Kernel(_)));
        assert!(!i.cached);
        assert_eq!(jit.signature(&e).as_deref(), Some(sig.as_str()));
        // A passthrough (1 + a + 2 − 3 → a) never compiles → no signature.
        let p = Expr::lit("1")
            .unwrap()
            .add(Expr::col(0, ty(12, 10), "a"))
            .add(Expr::lit("2").unwrap())
            .sub(Expr::lit("3").unwrap());
        assert_eq!(jit.signature(&p), None);
    }

    #[test]
    fn async_compile_matches_synchronous_semantics() {
        let jit = JitEngine::with_defaults();
        let e = Expr::col(0, ty(9, 3), "a").add(Expr::col(1, ty(9, 3), "b"));
        let (c_async, i_async) = jit.compile_async(&e).wait();
        assert!(!i_async.cached);
        assert!(i_async.modeled_compile_s > 0.25);
        // The synchronous path now hits the same cached kernel.
        let (c_sync, i_sync) = jit.compile(&e);
        assert!(i_sync.cached);
        assert_eq!(i_sync.modeled_compile_s, 0.0);
        match (c_async, c_sync) {
            (Compiled::Kernel(a), Compiled::Kernel(b)) => assert!(Arc::ptr_eq(&a, &b)),
            _ => panic!("expected kernels"),
        }
        let s = jit.cache_stats();
        assert_eq!((s.hits, s.misses), (1, 1), "{s:?}");
    }

    #[test]
    fn nvcc_latency_emulation_sleeps_misses_only() {
        let mut jit = JitEngine::with_defaults();
        jit.set_nvcc_latency_emulation(true);
        assert!(jit.nvcc_latency_emulation());
        let e = Expr::col(0, ty(5, 1), "a").add(Expr::col(1, ty(5, 1), "b"));
        let t0 = Instant::now();
        let (_, i1) = jit.compile(&e);
        let miss_wall = t0.elapsed().as_secs_f64();
        assert!(!i1.cached);
        // The miss slept ≈ its modeled NVCC time (300 ms front-end floor).
        assert!(miss_wall >= i1.modeled_compile_s * 0.9, "{miss_wall} vs {i1:?}");
        // Hits pay nothing.
        let t1 = Instant::now();
        let (_, i2) = jit.compile(&e);
        assert!(i2.cached);
        assert!(t1.elapsed().as_secs_f64() < 0.1);
    }
}
