//! The JIT engine: optimization pipeline, kernel cache, and compile-time
//! accounting.
//!
//! Expressions are optimized (§III-D), compiled to kernels (§III-B2), and
//! cached by structural signature so repeated queries skip compilation.
//! Compile time is reported two ways: the *actual* time this Rust code
//! spent building the IR (microseconds) and the *modeled* NVCC latency a
//! real deployment pays (§IV-D1 reports 320–423 ms for TPC-H Q1), so
//! harnesses can report the same compile/execute split the paper does.

use crate::codegen::{compile_expr_with, CodegenOptions, CompiledExpr};
use crate::constfold::{fold_constants, prealign_constants};
use crate::expr::Expr;
use crate::nary::NExpr;
use crate::schedule::schedule_alignment;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use up_gpusim::cost::modeled_compile_time_s;

/// Which §III-D rewrites run before code generation. All on by default;
/// the Fig. 10–12 ablation harnesses toggle them individually.
#[derive(Clone, Copy, Debug)]
pub struct JitOptions {
    /// Alignment scheduling (§III-D1).
    pub schedule_alignment: bool,
    /// Constant grouping + pre-calculation and shortcuts (§III-D2).
    pub fold_constants: bool,
    /// Compile-time constant alignment (Fig. 7's final step).
    pub prealign_constants: bool,
}

impl Default for JitOptions {
    fn default() -> Self {
        JitOptions { schedule_alignment: true, fold_constants: true, prealign_constants: true }
    }
}

impl JitOptions {
    /// Every optimization disabled — the ablation baseline.
    pub fn none() -> Self {
        JitOptions { schedule_alignment: false, fold_constants: false, prealign_constants: false }
    }
}

/// Compilation outcome: a kernel, or nothing to run at all.
#[derive(Clone, Debug)]
pub enum Compiled {
    /// A generated kernel.
    Kernel(Arc<CompiledExpr>),
    /// The optimized expression is a bare column or constant — "no GPU
    /// kernel is generated" (§IV-B3's `1+a+2−3` case). The engine copies
    /// or broadcasts instead.
    Passthrough(Expr),
}

/// Metadata of one compile request.
#[derive(Clone, Copy, Debug)]
pub struct CompileInfo {
    /// Served from the kernel cache.
    pub cached: bool,
    /// Seconds this process actually spent optimizing + building IR.
    pub build_s: f64,
    /// Modeled NVCC compile latency (0 when cached or passthrough).
    pub modeled_compile_s: f64,
}

/// The JIT compilation engine with its kernel cache.
pub struct JitEngine {
    opts: JitOptions,
    cache: HashMap<String, Arc<CompiledExpr>>,
    hits: u64,
    misses: u64,
    next_id: u64,
}

impl JitEngine {
    /// New engine with the given optimization switches.
    pub fn new(opts: JitOptions) -> JitEngine {
        JitEngine { opts, cache: HashMap::new(), hits: 0, misses: 0, next_id: 0 }
    }

    /// New engine with all optimizations on.
    pub fn with_defaults() -> JitEngine {
        Self::new(JitOptions::default())
    }

    /// The optimization switches in effect.
    pub fn options(&self) -> JitOptions {
        self.opts
    }

    /// Runs the §III-D optimization pipeline on an expression.
    pub fn optimize(&self, expr: &Expr) -> Expr {
        let mut n = NExpr::from_expr(expr);
        if self.opts.fold_constants {
            n = fold_constants(n);
        }
        if self.opts.schedule_alignment {
            n = schedule_alignment(n);
        }
        if self.opts.prealign_constants {
            n = prealign_constants(n);
        }
        n.to_expr()
    }

    /// Optimizes and compiles an expression, consulting the cache.
    pub fn compile(&mut self, expr: &Expr) -> (Compiled, CompileInfo) {
        let t0 = Instant::now();
        let optimized = self.optimize(expr);
        match optimized {
            Expr::Col { .. } | Expr::Const(_) => {
                let info = CompileInfo {
                    cached: false,
                    build_s: t0.elapsed().as_secs_f64(),
                    modeled_compile_s: 0.0,
                };
                (Compiled::Passthrough(optimized), info)
            }
            e => {
                let copts = CodegenOptions {
                    // Without constant construction, literals convert to
                    // DECIMAL per tuple inside the kernel (§III-D2).
                    runtime_const_conversion: !self.opts.fold_constants,
                };
                let sig = format!("{}|rtc={}", e.signature(), copts.runtime_const_conversion);
                if let Some(hit) = self.cache.get(&sig) {
                    self.hits += 1;
                    let info = CompileInfo {
                        cached: true,
                        build_s: t0.elapsed().as_secs_f64(),
                        modeled_compile_s: 0.0,
                    };
                    return (Compiled::Kernel(Arc::clone(hit)), info);
                }
                self.misses += 1;
                self.next_id += 1;
                let name = format!("calc_expr_{}", self.next_id);
                let compiled = Arc::new(compile_expr_with(&e, &name, copts));
                let modeled = modeled_compile_time_s(compiled.kernel.static_inst_count());
                self.cache.insert(sig, Arc::clone(&compiled));
                let info = CompileInfo {
                    cached: false,
                    build_s: t0.elapsed().as_secs_f64(),
                    modeled_compile_s: modeled,
                };
                (Compiled::Kernel(compiled), info)
            }
        }
    }

    /// (cache hits, cache misses) so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use up_num::DecimalType;

    fn ty(p: u32, s: u32) -> DecimalType {
        DecimalType::new_unchecked(p, s)
    }

    #[test]
    fn cache_hits_on_identical_structure() {
        let mut jit = JitEngine::with_defaults();
        let e = Expr::col(0, ty(4, 2), "a").add(Expr::col(1, ty(4, 1), "b"));
        let (c1, i1) = jit.compile(&e);
        let (c2, i2) = jit.compile(&e);
        assert!(!i1.cached);
        assert!(i2.cached);
        assert!(i1.modeled_compile_s > 0.25); // NVCC front-end floor
        assert_eq!(i2.modeled_compile_s, 0.0);
        match (c1, c2) {
            (Compiled::Kernel(k1), Compiled::Kernel(k2)) => {
                assert!(Arc::ptr_eq(&k1, &k2));
            }
            _ => panic!("expected kernels"),
        }
        assert_eq!(jit.cache_stats(), (1, 1));
    }

    #[test]
    fn trivial_expression_generates_no_kernel() {
        // 1 + a + 2 − 3 → a (§IV-B3: "no GPU kernel is generated").
        let mut jit = JitEngine::with_defaults();
        let e = Expr::lit("1")
            .unwrap()
            .add(Expr::col(0, ty(12, 10), "a"))
            .add(Expr::lit("2").unwrap())
            .sub(Expr::lit("3").unwrap());
        let (c, info) = jit.compile(&e);
        assert!(matches!(c, Compiled::Passthrough(Expr::Col { .. })));
        assert_eq!(info.modeled_compile_s, 0.0);
    }

    #[test]
    fn optimizations_reduce_kernel_size() {
        let a = || Expr::col(0, ty(12, 10), "a");
        let e = Expr::lit("1")
            .unwrap()
            .add(a())
            .add(Expr::lit("2").unwrap())
            .add(Expr::lit("11").unwrap());
        let mut on = JitEngine::with_defaults();
        let mut off = JitEngine::new(JitOptions::none());
        let (k_on, _) = on.compile(&e);
        let (k_off, _) = off.compile(&e);
        let (Compiled::Kernel(k_on), Compiled::Kernel(k_off)) = (k_on, k_off) else {
            panic!("expected kernels");
        };
        assert!(
            k_on.kernel.static_inst_count() < k_off.kernel.static_inst_count(),
            "{} !< {}",
            k_on.kernel.static_inst_count(),
            k_off.kernel.static_inst_count()
        );
    }

    #[test]
    fn distinct_types_do_not_collide_in_cache() {
        let mut jit = JitEngine::with_defaults();
        let e1 = Expr::col(0, ty(4, 2), "a").add(Expr::col(1, ty(4, 1), "b"));
        let e2 = Expr::col(0, ty(9, 2), "a").add(Expr::col(1, ty(4, 1), "b"));
        jit.compile(&e1);
        let (_, i2) = jit.compile(&e2);
        assert!(!i2.cached);
        assert_eq!(jit.cache_stats(), (0, 2));
    }
}
