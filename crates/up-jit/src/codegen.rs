//! Expression → GPU-kernel code generation (single thread per tuple).
//!
//! Generated kernels follow Listing 1's three steps exactly: read the
//! compact byte-aligned decimals and expand them to word-aligned register
//! arrays, evaluate the expression with PTX carry chains, and write the
//! result back in compact form. All per-word loops are unrolled — `Lw` of
//! every intermediate is a JIT-time constant (§III-B3), which is the whole
//! point of generating code per expression.
//!
//! Sign-magnitude addition is branch-predicated exactly as §II-B
//! describes: "the signs of operands determine whether two numbers are
//! added or one number is subtracted from the other. Numbers are compared
//! before the subtraction to decide the minuend and the subtrahend."
//! Division pre-multiplies the dividend by `10^(s₂+4)` (§III-B3) and
//! invokes the §III-C2 binary-search routine (the `DivBig` macro-op).

use crate::expr::Expr;
use up_gpusim::ptx::{CmpOp, Inst as I, Kernel, KernelBuilder, Reg, Special, Stmt};
use up_gpusim::{DeviceConfig, LaunchConfig};
use up_num::dtype::DecimalType;
use up_num::pow10;
use up_num::DIV_EXTRA_SCALE;

/// A decimal value materialized in registers: `Lw` contiguous word
/// registers plus a sign register (0 = non-negative, 1 = negative).
#[derive(Clone, Debug)]
struct ValueRegs {
    sign: Reg,
    words: Vec<Reg>,
    ty: DecimalType,
}

/// A compiled expression kernel.
#[derive(Clone, Debug)]
pub struct CompiledExpr {
    /// The kernel. Input column `k` of the expression reads device buffer
    /// `k`; the compact result is written to buffer `n_cols` with stride
    /// `out_ty.lb()`. Scalar param 0 is the tuple count.
    pub kernel: Kernel,
    /// Result type (inferred bottom-up, §III-B3).
    pub out_ty: DecimalType,
    /// Number of input column buffers the kernel expects.
    pub n_inputs: usize,
    /// Memoized launch geometry (see [`CompiledExpr::launch_config`]).
    pub launch: LaunchMemo,
}

/// One-slot memo of the derived [`LaunchConfig`], stored next to the
/// compiled kernel so cache hits skip re-deriving the launch geometry.
/// Repeated queries hit the kernel cache with the same tuple count, so a
/// single slot keyed on the launch inputs covers the steady state.
#[derive(Debug, Default)]
pub struct LaunchMemo {
    slot: std::sync::Mutex<Option<MemoKey>>,
}

#[derive(Clone, Copy, Debug)]
struct MemoKey {
    tuples: u64,
    block_threads: u32,
    sm_count: u32,
    max_threads_per_block: u32,
    cfg: LaunchConfig,
}

impl Clone for LaunchMemo {
    fn clone(&self) -> LaunchMemo {
        LaunchMemo { slot: std::sync::Mutex::new(*self.slot.lock().expect("launch memo poisoned")) }
    }
}

impl CompiledExpr {
    /// The launch geometry for `tuples` tuples at `block_threads` threads
    /// per block, memoized per kernel. Keyed on every input
    /// [`LaunchConfig::for_tuples`] reads (tuple count, requested block
    /// size, and the device's SM count / block-size cap), so a hit is
    /// exactly the config a fresh derivation would produce.
    pub fn launch_config(
        &self,
        tuples: u64,
        block_threads: u32,
        device: &DeviceConfig,
    ) -> LaunchConfig {
        let mut slot = self.launch.slot.lock().expect("launch memo poisoned");
        if let Some(k) = *slot {
            if k.tuples == tuples
                && k.block_threads == block_threads
                && k.sm_count == device.sm_count
                && k.max_threads_per_block == device.max_threads_per_block
            {
                return k.cfg;
            }
        }
        let cfg = LaunchConfig::for_tuples(tuples, block_threads, device);
        *slot = Some(MemoKey {
            tuples,
            block_threads,
            sm_count: device.sm_count,
            max_threads_per_block: device.max_threads_per_block,
            cfg,
        });
        cfg
    }
}

/// Estimated post-allocation hardware registers per thread. Calibrated to
/// the paper's Nsight profile (§IV-A): the LEN=32 addition kernel runs at
/// 50% occupancy (≈ 85 regs on GA102) and the LEN=32 multiplication kernel
/// at 33% (≈ 128 regs); LEN=8 kernels keep 100%.
pub fn estimate_hw_regs(out_lw: usize, has_mul: bool, has_div: bool) -> u32 {
    let per_word = if has_div {
        4.2
    } else if has_mul {
        3.5
    } else {
        2.2
    };
    (16.0 + per_word * out_lw as f64).ceil() as u32
}

/// Code-generation switches.
#[derive(Clone, Copy, Debug, Default)]
pub struct CodegenOptions {
    /// Convert constants to DECIMAL *at runtime*, per tuple, at the
    /// expression's `Decimal<N>` width — what happens without the
    /// §III-D2 compile-time constant construction. The generated code is
    /// still functionally exact (it rebuilds the same words digit by
    /// digit); what changes is the per-tuple work Fig. 11 measures.
    pub runtime_const_conversion: bool,
}

/// Compiles an (already optimized) expression into a kernel named `name`
/// with default codegen options.
pub fn compile_expr(expr: &Expr, name: &str) -> CompiledExpr {
    compile_expr_with(expr, name, CodegenOptions::default())
}

/// Compiles with explicit codegen options.
///
/// # Panics
/// Panics if the expression references more than 250 distinct columns
/// (device buffer indices are bytes; the output buffer takes one slot).
pub fn compile_expr_with(expr: &Expr, name: &str, copts: CodegenOptions) -> CompiledExpr {
    let out_ty = expr.dtype();
    let n_inputs = expr
        .columns()
        .iter()
        .copied()
        .max()
        .map(|m| m + 1)
        .unwrap_or(0);
    assert!(n_inputs <= 250, "too many input columns");

    let mut g = Gen::new();
    g.result_lw = out_ty.lw();
    g.result_scale = out_ty.scale;
    g.runtime_const_conv = copts.runtime_const_conversion;
    // Listing 1 skeleton: grid-stride loop over tuples.
    let tid = g.kb.reg();
    let ctaid = g.kb.reg();
    let ntid = g.kb.reg();
    let nctaid = g.kb.reg();
    g.kb.push(I::MovSpecial { d: tid, s: Special::TidX });
    g.kb.push(I::MovSpecial { d: ctaid, s: Special::CtaIdX });
    g.kb.push(I::MovSpecial { d: ntid, s: Special::NTidX });
    g.kb.push(I::MovSpecial { d: nctaid, s: Special::NCtaIdX });
    let i = g.kb.reg();
    let stride = g.kb.reg();
    g.kb.push(I::MulLo { d: i, a: ctaid, b: ntid });
    g.kb.push(I::Add { d: i, a: i, b: tid });
    g.kb.push(I::MulLo { d: stride, a: ntid, b: nctaid });
    let n = g.kb.reg();
    g.kb.push(I::LdParam { d: n, idx: 0 });

    g.zero = g.kb.imm(0);
    g.one = g.kb.imm(1);

    let p = g.kb.pred();
    let cond = g.block(|g| {
        g.kb.push(I::SetP { p, op: CmpOp::Lt, a: i, b: n });
    });
    let out_buf = n_inputs as u8;
    let body = g.block(|g| {
        // Step 1+2: load/expand operands and evaluate.
        let v = g.gen_value(expr, i, None);
        // Step 3: write back compact.
        g.gen_store_compact(&v, out_buf, i);
        g.kb.push(I::Add { d: i, a: i, b: stride });
    });
    g.kb.while_(p, cond, body, u32::MAX);

    let (has_mul, has_div) = op_classes(expr);
    let hw_regs = estimate_hw_regs(out_ty.lw(), has_mul, has_div);
    let kernel = g.kb.finish(name, hw_regs);
    CompiledExpr { kernel, out_ty, n_inputs, launch: LaunchMemo::default() }
}

fn op_classes(e: &Expr) -> (bool, bool) {
    match e {
        Expr::Col { .. } | Expr::Const(_) => (false, false),
        Expr::Neg(x) => op_classes(x),
        Expr::Add(a, b) | Expr::Sub(a, b) => {
            let (m1, d1) = op_classes(a);
            let (m2, d2) = op_classes(b);
            // Alignment introduces a multiplication.
            (m1 || m2 || a.dtype().scale != b.dtype().scale, d1 || d2)
        }
        Expr::Mul(a, b) => {
            let (_, d1) = op_classes(a);
            let (_, d2) = op_classes(b);
            (true, d1 || d2)
        }
        Expr::Div(a, b) | Expr::Mod(a, b) => {
            let _ = (op_classes(a), op_classes(b));
            (true, true)
        }
    }
}

/// Code-generation context: wraps the builder with cached immediates.
struct Gen {
    kb: KernelBuilder,
    zero: Reg,
    one: Reg,
    result_lw: usize,
    result_scale: u32,
    runtime_const_conv: bool,
}

impl Gen {
    fn new() -> Gen {
        Gen {
            kb: KernelBuilder::new(),
            zero: 0,
            one: 0,
            result_lw: 1,
            result_scale: 0,
            runtime_const_conv: false,
        }
    }

    /// Builds a branch/loop body: statements appended by `f` are carved
    /// off the main stream (register allocation stays shared).
    fn block(&mut self, f: impl FnOnce(&mut Gen)) -> Vec<Stmt> {
        let mark = self.kb.stmt_count();
        f(self);
        self.kb.drain_stmts(mark)
    }

    /// Materializes an expression's value in registers for tuple `i`.
    /// `ctx_scale` is the scale of the nearest enclosing addition (the
    /// scale a runtime-converted constant will be aligned to).
    fn gen_value(&mut self, e: &Expr, tuple: Reg, ctx_scale: Option<u32>) -> ValueRegs {
        match e {
            Expr::Col { index, ty, .. } => self.gen_load_compact(*index as u8, *ty, tuple),
            Expr::Const(c) => {
                if self.runtime_const_conv {
                    return self.gen_const_runtime(c, ctx_scale);
                }
                // Compile-time constant conversion (§III-D2): the words are
                // immediates — no runtime conversion at all.
                let ty = c.dtype();
                let lw = ty.lw();
                let words = self.kb.regs(lw);
                let mag = c.unscaled().mag();
                for (k, &w) in words.iter().enumerate() {
                    let imm = mag.get(k).copied().unwrap_or(0);
                    self.kb.push(I::MovImm { d: w, imm });
                }
                let sign = self.kb.imm(u32::from(c.unscaled().is_negative()));
                ValueRegs { sign, words, ty }
            }
            Expr::Neg(x) => {
                let v = self.gen_value(x, tuple, ctx_scale);
                let sign = self.kb.reg();
                self.kb.push(I::Xor { d: sign, a: v.sign, b: self.one });
                ValueRegs { sign, words: v.words, ty: v.ty }
            }
            Expr::Add(a, b) => {
                let ctx = Some(e.dtype().scale);
                let va = self.gen_value(a, tuple, ctx);
                let vb = self.gen_value(b, tuple, ctx);
                self.gen_add_signed(va, vb, e.dtype())
            }
            Expr::Sub(a, b) => {
                let ctx = Some(e.dtype().scale);
                let va = self.gen_value(a, tuple, ctx);
                let vb = self.gen_value(b, tuple, ctx);
                let nsign = self.kb.reg();
                self.kb.push(I::Xor { d: nsign, a: vb.sign, b: self.one });
                let vb = ValueRegs { sign: nsign, ..vb };
                self.gen_add_signed(va, vb, e.dtype())
            }
            Expr::Mul(a, b) => {
                let va = self.gen_value(a, tuple, None);
                let vb = self.gen_value(b, tuple, None);
                self.gen_mul_signed(va, vb, e.dtype())
            }
            Expr::Div(a, b) => {
                let va = self.gen_value(a, tuple, None);
                let vb = self.gen_value(b, tuple, None);
                self.gen_div_signed(va, vb, e.dtype())
            }
            Expr::Mod(a, b) => {
                let va = self.gen_value(a, tuple, None);
                let vb = self.gen_value(b, tuple, None);
                self.gen_mod_signed(va, vb, e.dtype())
            }
        }
    }

    /// Loads and expands a compact decimal (§III-B2 step 1): `Lb` byte
    /// loads assembled into `Lw` words, sign split out of the top bit.
    fn gen_load_compact(&mut self, buf: u8, ty: DecimalType, tuple: Reg) -> ValueRegs {
        let lb = ty.lb();
        let lw = ty.lw();
        let words = self.kb.regs(lw);
        for &w in &words {
            self.kb.push(I::MovImm { d: w, imm: 0 });
        }
        let sign = self.kb.reg();
        let addr = self.kb.reg();
        let lb_reg = self.kb.imm(lb as u32);
        self.kb.push(I::MulLo { d: addr, a: tuple, b: lb_reg });
        let byte = self.kb.reg();
        let tmp = self.kb.reg();
        let seven = self.kb.imm(7);
        let mask7f = self.kb.imm(0x7f);
        for bi in 0..lb {
            self.kb.push(I::LdGlobalU8 { d: byte, buf, addr });
            if bi + 1 < lb {
                self.kb.push(I::Add { d: addr, a: addr, b: self.one });
            }
            let mut src = byte;
            if bi == lb - 1 {
                // Top bit is the sign (Fig. 4).
                self.kb.push(I::Shr { d: sign, a: byte, b: seven });
                self.kb.push(I::And { d: tmp, a: byte, b: mask7f });
                src = tmp;
            }
            let widx = bi / 4;
            if widx < lw {
                let shift = (bi % 4) as u32 * 8;
                if shift == 0 {
                    self.kb.push(I::Or { d: words[widx], a: words[widx], b: src });
                } else {
                    let sh = self.kb.imm(shift);
                    let shifted = self.kb.reg();
                    self.kb.push(I::Shl { d: shifted, a: src, b: sh });
                    self.kb.push(I::Or { d: words[widx], a: words[widx], b: shifted });
                }
            }
        }
        ValueRegs { sign, words, ty }
    }

    /// Runtime constant conversion (the unoptimized path Fig. 11
    /// measures): builds the constant's unscaled digits — pre-aligned to
    /// the expression's result scale, the way the interpreter would
    /// materialize the literal for this operand — digit by digit at the
    /// expression's `Decimal<N>` width: `w = w·10 + d` per decimal digit,
    /// every tuple.
    fn gen_const_runtime(&mut self, c: &up_num::UpDecimal, ctx_scale: Option<u32>) -> ValueRegs {
        let target_scale = ctx_scale.unwrap_or(c.dtype().scale).max(c.dtype().scale);
        let aligned_int = c.align_up(target_scale);
        let digits = aligned_int.mag_to_dec_string();
        let ty = DecimalType::new_unchecked(
            (digits.len() as u32).max(target_scale + 1),
            target_scale,
        );
        let width = self.result_lw.max(ty.lw());
        let words = self.kb.regs(width);
        for &w in &words {
            self.kb.push(I::MovImm { d: w, imm: 0 });
        }
        let ten = self.kb.imm(10);
        let lo = self.kb.reg();
        let hi = self.kb.reg();
        let carry = self.kb.reg();
        for ch in digits.bytes() {
            // words = words × 10 (single-limb schoolbook over the full
            // template width) …
            self.kb.push(I::MovImm { d: carry, imm: 0 });
            for &w in &words {
                self.kb.push(I::MulLo { d: lo, a: w, b: ten });
                self.kb.push(I::MulHi { d: hi, a: w, b: ten });
                self.kb.push(I::AddCC { d: w, a: lo, b: carry });
                self.kb.push(I::AddC { d: carry, a: hi, b: self.zero });
            }
            // … + digit, rippling the carry.
            let d = self.kb.imm((ch - b'0') as u32);
            self.kb.push(I::AddCC { d: words[0], a: words[0], b: d });
            for &w in &words[1..] {
                self.kb.push(I::AddC { d: w, a: w, b: self.zero });
            }
        }
        let sign = self.kb.imm(u32::from(c.unscaled().is_negative()));
        ValueRegs { sign, words, ty }
    }

    /// Writes a value back in compact form (§III-B2 step 3).
    fn gen_store_compact(&mut self, v: &ValueRegs, buf: u8, tuple: Reg) {
        let lb = v.ty.lb();
        let addr = self.kb.reg();
        let lb_reg = self.kb.imm(lb as u32);
        self.kb.push(I::MulLo { d: addr, a: tuple, b: lb_reg });
        let byte = self.kb.reg();
        let mask7f = self.kb.imm(0x7f);
        let seven = self.kb.imm(7);
        for bi in 0..lb {
            let widx = bi / 4;
            let shift = (bi % 4) as u32 * 8;
            if widx < v.words.len() {
                if shift == 0 {
                    self.kb.push(I::Mov { d: byte, a: v.words[widx] });
                } else {
                    let sh = self.kb.imm(shift);
                    self.kb.push(I::Shr { d: byte, a: v.words[widx], b: sh });
                }
            } else {
                self.kb.push(I::MovImm { d: byte, imm: 0 });
            }
            if bi == lb - 1 {
                let sbit = self.kb.reg();
                self.kb.push(I::And { d: byte, a: byte, b: mask7f });
                self.kb.push(I::Shl { d: sbit, a: v.sign, b: seven });
                self.kb.push(I::Or { d: byte, a: byte, b: sbit });
            }
            self.kb.push(I::StGlobalU8 { buf, addr, src: byte });
            if bi + 1 < lb {
                self.kb.push(I::Add { d: addr, a: addr, b: self.one });
            }
        }
    }

    /// Scale alignment: multiplies a magnitude by `10^k` (§II-B), the
    /// power-of-ten limbs baked in as immediates. The aligned value's
    /// precision grows by `k` digits, which sizes its register array.
    fn gen_align(&mut self, v: ValueRegs, target_scale: u32) -> ValueRegs {
        debug_assert!(target_scale >= v.ty.scale);
        let k = target_scale - v.ty.scale;
        if k == 0 {
            return v;
        }
        let ty = DecimalType::new_unchecked(
            (v.ty.precision + k).max(target_scale + 1),
            target_scale,
        );
        // The paper's `<<n` operator is the generic decimal multiply of
        // the code template (§III-D1 calls alignment "a multiplication
        // operation"), so the power-of-ten operand occupies the aligned
        // width — this is what makes alignment scheduling worth 16–34%
        // (Fig. 10), and what the §III-D2 compile-time constant alignment
        // removes.
        let p10 = pow10::pow10_limbs(k);
        let c_width = ty.lw().min(v.words.len().max(p10.len()));
        let c_regs = self.kb.regs(c_width.max(p10.len()));
        for (i, &r) in c_regs.iter().enumerate() {
            let imm = p10.get(i).copied().unwrap_or(0);
            self.kb.push(I::MovImm { d: r, imm });
        }
        let words = self.gen_mag_mul(&v.words, &c_regs, ty.lw());
        ValueRegs { sign: v.sign, words, ty }
    }

    /// Magnitude addition chain (`add.cc` + `addc.cc`, Listing 2), writing
    /// to `out` (length ≥ both inputs; missing input words read zero).
    fn gen_mag_add_into(&mut self, out: &[Reg], a: &[Reg], b: &[Reg]) {
        for (k, &d) in out.iter().enumerate() {
            let ra = a.get(k).copied().unwrap_or(self.zero);
            let rb = b.get(k).copied().unwrap_or(self.zero);
            if k == 0 {
                self.kb.push(I::AddCC { d, a: ra, b: rb });
            } else {
                self.kb.push(I::AddC { d, a: ra, b: rb });
            }
        }
    }

    /// Magnitude subtraction chain; returns the borrow-out register
    /// (1 iff `b > a`).
    fn gen_mag_sub_into(&mut self, out: &[Reg], a: &[Reg], b: &[Reg]) -> Reg {
        for (k, &d) in out.iter().enumerate() {
            let ra = a.get(k).copied().unwrap_or(self.zero);
            let rb = b.get(k).copied().unwrap_or(self.zero);
            if k == 0 {
                self.kb.push(I::SubCC { d, a: ra, b: rb });
            } else {
                self.kb.push(I::SubC { d, a: ra, b: rb });
            }
        }
        // Capture the final borrow: subc wrote the flag; 0+0+flag = flag.
        let borrow = self.kb.reg();
        self.kb.push(I::AddC { d: borrow, a: self.zero, b: self.zero });
        borrow
    }

    /// Schoolbook magnitude multiplication into `out_lw` fresh registers:
    /// the k-th word accumulates `a[i]·b[j]` for `i + j = k` with the
    /// carry-out pushed upward (§II-B). The carry sequence is the
    /// overflow-safe `mul.lo`/`mul.hi` + `add.cc` pattern.
    fn gen_mag_mul(&mut self, a: &[Reg], b: &[Reg], out_lw: usize) -> Vec<Reg> {
        let out = self.kb.regs(out_lw);
        for &d in &out {
            self.kb.push(I::MovImm { d, imm: 0 });
        }
        let lo = self.kb.reg();
        let hi = self.kb.reg();
        let carry = self.kb.reg();
        for (j, &bj) in b.iter().enumerate() {
            if j >= out_lw {
                break;
            }
            self.kb.push(I::MovImm { d: carry, imm: 0 });
            for (i, &ai) in a.iter().enumerate() {
                let k = i + j;
                if k >= out_lw {
                    break;
                }
                self.kb.push(I::MulLo { d: lo, a: ai, b: bj });
                self.kb.push(I::MulHi { d: hi, a: ai, b: bj });
                // out[k] += carry; hi += c1 (cannot overflow)
                self.kb.push(I::AddCC { d: out[k], a: out[k], b: carry });
                self.kb.push(I::AddC { d: hi, a: hi, b: self.zero });
                // out[k] += lo; carry = hi + c2 (cannot overflow)
                self.kb.push(I::AddCC { d: out[k], a: out[k], b: lo });
                self.kb.push(I::AddC { d: carry, a: hi, b: self.zero });
            }
            // Deposit the row's trailing carry and ripple it upward.
            let k = j + a.len();
            if k < out_lw {
                self.kb.push(I::AddCC { d: out[k], a: out[k], b: carry });
                for &d in &out[k + 1..] {
                    self.kb.push(I::AddC { d, a: d, b: self.zero });
                }
            }
        }
        out
    }

    /// Sign-magnitude addition (§II-B): same signs add magnitudes; mixed
    /// signs subtract with the larger magnitude as minuend, selected
    /// branch-free via the borrow flag.
    fn gen_add_signed(&mut self, a: ValueRegs, b: ValueRegs, out_ty: DecimalType) -> ValueRegs {
        let out_lw = out_ty.lw();
        // Alignment first (the smaller scale is always raised, §II-B).
        let a = self.gen_align(a, out_ty.scale);
        let b = self.gen_align(b, out_ty.scale);

        let out = self.kb.regs(out_lw);
        let out_sign = self.kb.reg();
        let same = self.kb.pred();
        self.kb.push(I::SetP { p: same, op: CmpOp::Eq, a: a.sign, b: b.sign });

        let (a2, b2) = (a.clone(), b.clone());
        let then_ = self.block(|g| {
            g.gen_mag_add_into(&out, &a2.words, &b2.words);
            g.kb.push(I::Mov { d: out_sign, a: a2.sign });
        });
        let else_ = self.block(|g| {
            // d1 = |a| − |b|, d2 = |b| − |a|; pick by the borrow.
            let d1 = g.kb.regs(out_lw);
            let borrow = g.gen_mag_sub_into(&d1, &a.words, &b.words);
            let d2 = g.kb.regs(out_lw);
            let _ = g.gen_mag_sub_into(&d2, &b.words, &a.words);
            let p_lt = g.kb.pred();
            g.kb.push(I::SetPImm { p: p_lt, op: CmpOp::Eq, a: borrow, imm: 1 });
            for k in 0..out_lw {
                g.kb.push(I::Selp { d: out[k], a: d2[k], b: d1[k], p: p_lt });
            }
            g.kb.push(I::Selp { d: out_sign, a: b.sign, b: a.sign, p: p_lt });
        });
        self.kb.if_(same, then_, else_);
        ValueRegs { sign: out_sign, words: out, ty: out_ty }
    }

    /// Signed multiplication: magnitude schoolbook + XOR of signs.
    fn gen_mul_signed(&mut self, a: ValueRegs, b: ValueRegs, out_ty: DecimalType) -> ValueRegs {
        let words = self.gen_mag_mul(&a.words, &b.words, out_ty.lw());
        let sign = self.kb.reg();
        self.kb.push(I::Xor { d: sign, a: a.sign, b: b.sign });
        ValueRegs { sign, words, ty: out_ty }
    }

    /// Signed division (§III-B3 + §III-C2): boost the dividend by
    /// `10^(s₂+4)`, divide magnitudes, XOR the signs (truncation toward
    /// zero falls out of magnitude division).
    fn gen_div_signed(&mut self, a: ValueRegs, b: ValueRegs, out_ty: DecimalType) -> ValueRegs {
        let boost = b.ty.scale + DIV_EXTRA_SCALE;
        let boosted_lw = a.ty.lw() + pow10_lw(boost);
        let a_boosted = {
            let p10 = pow10::pow10_limbs(boost);
            let c_regs = self.kb.regs(p10.len());
            for (r, &limb) in c_regs.iter().zip(&p10) {
                self.kb.push(I::MovImm { d: *r, imm: limb });
            }
            self.gen_mag_mul(&a.words, &c_regs, boosted_lw)
        };
        let out = self.kb.regs(out_ty.lw());
        self.kb.push(I::DivBig {
            d: out[0],
            dn: out.len() as u8,
            a: a_boosted[0],
            an: a_boosted.len() as u8,
            b: b.words[0],
            bn: b.words.len() as u8,
        });
        let sign = self.kb.reg();
        self.kb.push(I::Xor { d: sign, a: a.sign, b: b.sign });
        ValueRegs { sign, words: out, ty: out_ty }
    }

    /// Signed modulo (§III-B3: integer modulo only — fractional digits are
    /// truncated first); the remainder takes the dividend's sign.
    fn gen_mod_signed(&mut self, a: ValueRegs, b: ValueRegs, out_ty: DecimalType) -> ValueRegs {
        let a_int = self.gen_truncate_scale(a);
        let b_int = self.gen_truncate_scale(b);
        let out = self.kb.regs(out_ty.lw());
        self.kb.push(I::RemBig {
            d: out[0],
            dn: out.len() as u8,
            a: a_int.words[0],
            an: a_int.words.len() as u8,
            b: b_int.words[0],
            bn: b_int.words.len() as u8,
        });
        ValueRegs { sign: a_int.sign, words: out, ty: out_ty }
    }

    /// Drops fractional digits: divide the magnitude by `10^s`.
    fn gen_truncate_scale(&mut self, v: ValueRegs) -> ValueRegs {
        if v.ty.scale == 0 {
            return v;
        }
        let p10 = pow10::pow10_limbs(v.ty.scale);
        let c_regs = self.kb.regs(p10.len());
        for (r, &limb) in c_regs.iter().zip(&p10) {
            self.kb.push(I::MovImm { d: *r, imm: limb });
        }
        let ty = DecimalType::new_unchecked(v.ty.int_digits().max(1), 0);
        let out = self.kb.regs(ty.lw().min(v.words.len()).max(1));
        self.kb.push(I::DivBig {
            d: out[0],
            dn: out.len() as u8,
            a: v.words[0],
            an: v.words.len() as u8,
            b: c_regs[0],
            bn: c_regs.len() as u8,
        });
        ValueRegs { sign: v.sign, words: out, ty }
    }
}

/// Word length of `10^k` — how much an alignment multiply can widen a
/// value.
fn pow10_lw(k: u32) -> usize {
    if k == 0 {
        0
    } else {
        up_num::lw_for_precision(k + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use up_gpusim::{launch, DeviceConfig, GlobalMem, LaunchConfig};
    use up_num::{decode_compact, encode_compact, UpDecimal};

    fn ty(p: u32, s: u32) -> DecimalType {
        DecimalType::new_unchecked(p, s)
    }

    /// Runs a compiled expression over column data and checks every output
    /// tuple against `eval_row`.
    fn check_kernel(expr: &Expr, col_tys: &[DecimalType], rows: Vec<Vec<UpDecimal>>) {
        let compiled = compile_expr(expr, "test_expr");
        let n = rows.len();
        let device = DeviceConfig::tiny();
        let mut mem = GlobalMem::new();
        for (c, t) in col_tys.iter().enumerate() {
            let mut bytes = Vec::with_capacity(n * t.lb());
            for row in &rows {
                bytes.extend(encode_compact(&row[c], *t).unwrap());
            }
            mem.add_buffer(bytes);
        }
        let out_lb = compiled.out_ty.lb();
        mem.alloc(n * out_lb);
        let cfg = LaunchConfig { grid_blocks: 2, block_threads: 64 };
        launch(&compiled.kernel, cfg, &device, &mut mem, &[n as u32]).unwrap();
        let out = mem.buffer(compiled.n_inputs as u8);
        for (i, row) in rows.iter().enumerate() {
            let got = decode_compact(&out[i * out_lb..(i + 1) * out_lb], compiled.out_ty);
            let want = expr.eval_row(row).unwrap();
            assert_eq!(
                got.cmp_value(&want),
                core::cmp::Ordering::Equal,
                "tuple {i}: kernel {got:?} vs reference {want:?}"
            );
        }
    }

    fn rows_from(vals: &[&[&str]], tys: &[DecimalType]) -> Vec<Vec<UpDecimal>> {
        vals.iter()
            .map(|r| {
                r.iter()
                    .zip(tys)
                    .map(|(s, t)| UpDecimal::parse(s, *t).unwrap())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn listing1_add_with_alignment() {
        // DECIMAL(4,2) + DECIMAL(4,1) — the paper's generated example.
        let tys = [ty(4, 2), ty(4, 1)];
        let e = Expr::col(0, tys[0], "c1").add(Expr::col(1, tys[1], "c2"));
        let rows = rows_from(
            &[
                &["1.23", "1.1"],
                &["-1.23", "1.1"],
                &["99.99", "99.9"],
                &["-99.99", "-99.9"],
                &["0.00", "0.0"],
                &["0.01", "-0.1"],
            ],
            &tys,
        );
        check_kernel(&e, &tys, rows);
    }

    #[test]
    fn subtraction_picks_minuend() {
        let tys = [ty(6, 2), ty(6, 2)];
        let e = Expr::col(0, tys[0], "a").sub(Expr::col(1, tys[1], "b"));
        let rows = rows_from(
            &[
                &["1.00", "2.50"],
                &["2.50", "1.00"],
                &["-3.00", "4.00"],
                &["-3.00", "-4.00"],
                &["5.55", "5.55"],
            ],
            &tys,
        );
        check_kernel(&e, &tys, rows);
    }

    #[test]
    fn multiplication_and_signs() {
        let tys = [ty(8, 3), ty(8, 2)];
        let e = Expr::col(0, tys[0], "a").mul(Expr::col(1, tys[1], "b"));
        let rows = rows_from(
            &[
                &["12345.678", "-999.99"],
                &["-0.001", "-0.01"],
                &["99999.999", "999999.99"],
                &["0.000", "123.45"],
            ],
            &tys,
        );
        check_kernel(&e, &tys, rows);
    }

    #[test]
    fn division_scale_rule() {
        let tys = [ty(9, 4), ty(5, 2)];
        let e = Expr::col(0, tys[0], "a").div(Expr::col(1, tys[1], "b"));
        let rows = rows_from(
            &[
                &["12345.6789", "3.00"],
                &["-1.0000", "3.00"],
                &["2.0000", "-7.77"],
                &["0.0001", "999.99"],
            ],
            &tys,
        );
        check_kernel(&e, &tys, rows);
    }

    #[test]
    fn modulo_integer_semantics() {
        let tys = [ty(9, 0), ty(9, 0)];
        let e = Expr::col(0, tys[0], "a").rem(Expr::col(1, tys[1], "b"));
        let rows = rows_from(
            &[
                &["17", "5"],
                &["-17", "5"],
                &["123456789", "1000"],
                &["4", "5"],
            ],
            &tys,
        );
        check_kernel(&e, &tys, rows);
    }

    #[test]
    fn constants_are_baked_in() {
        let t = ty(6, 2);
        let e = Expr::lit("1.5").unwrap().add(Expr::col(0, t, "a")).mul(Expr::lit("-2").unwrap());
        let rows = rows_from(&[&["10.00"], &["-0.25"], &["9999.99"]], &[t]);
        check_kernel(&e, &[t], rows);
    }

    #[test]
    fn high_precision_len8_roundtrip() {
        // 76-digit result precision (LEN 8).
        let t = ty(70, 10);
        let e = Expr::col(0, t, "a").add(Expr::col(1, t, "b"));
        let big = "9".repeat(55);
        let rows = rows_from(
            &[
                &[&format!("{big}.0000000001"), "0.0000000001"],
                &["-1.0000000000", "1.0000000000"],
            ],
            &[t, t],
        );
        check_kernel(&e, &[t, t], rows);
    }

    #[test]
    fn rsa_shape_square_mod() {
        // c1*c1 % N — the Query 4 building block.
        let t = ty(17, 0);
        let n_ty = ty(18, 0);
        let e = Expr::col(0, t, "c1")
            .mul(Expr::col(0, t, "c1"))
            .rem(Expr::Const(UpDecimal::parse("999999999999999989", n_ty).unwrap()));
        let rows = rows_from(&[&["12345678901234567"], &["98765432109876543"]], &[t]);
        check_kernel(&e, &[t], rows);
    }

    #[test]
    fn estimated_regs_match_profiling_calibration() {
        let d = DeviceConfig::a6000();
        // LEN 32 addition → ~50% occupancy; multiplication → ~33%.
        let add32 = estimate_hw_regs(32, false, false);
        let mul32 = estimate_hw_regs(32, true, false);
        assert!((0.4..=0.55).contains(&d.occupancy(add32)));
        assert!((0.28..=0.4).contains(&d.occupancy(mul32)));
        // LEN 8 stays at full occupancy.
        assert!(d.occupancy(estimate_hw_regs(8, false, false)) > 0.95);
        assert!(d.occupancy(estimate_hw_regs(8, true, false)) > 0.95);
    }

    #[test]
    fn launch_config_memo_hit_equals_fresh_derivation() {
        let d = DeviceConfig::a6000();
        let t = ty(8, 2);
        let e = Expr::col(0, t, "a").add(Expr::col(1, t, "b"));
        let k = compile_expr(&e, "memo_test");
        // Miss populates, hit returns the identical config.
        let first = k.launch_config(100_000, 256, &d);
        let hit = k.launch_config(100_000, 256, &d);
        assert_eq!(first, hit);
        assert_eq!(hit, LaunchConfig::for_tuples(100_000, 256, &d));
        // A different tuple count re-derives rather than serving stale
        // geometry.
        let other = k.launch_config(7, 256, &d);
        assert_eq!(other, LaunchConfig::for_tuples(7, 256, &d));
        assert_ne!(other, first);
        // A different device geometry invalidates too.
        let mut small = DeviceConfig::a6000();
        small.sm_count = 2;
        let scaled = k.launch_config(7, 256, &small);
        assert_eq!(scaled, LaunchConfig::for_tuples(7, 256, &small));
    }
}
