//! Typed decimal expression trees.
//!
//! A SQL expression over `DECIMAL` columns parses into this tree; the JIT
//! engine types it bottom-up with the §III-B3 rules, rewrites it
//! (alignment scheduling §III-D1, constant optimization §III-D2), and
//! compiles it to a GPU kernel. [`Expr::eval_row`] is the scalar reference
//! semantics every generated kernel must match bit-for-bit.

use up_num::{DecimalType, NumError, UpDecimal};

/// A decimal-valued expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A column reference: input slot + declared type.
    Col {
        /// Index into the kernel's input column array.
        index: usize,
        /// The column's declared `DECIMAL(p, s)`.
        ty: DecimalType,
        /// Name for diagnostics and codegen labels.
        name: String,
    },
    /// A literal, already converted to `DECIMAL` (the JIT does this at
    /// compile time, §III-D2).
    Const(UpDecimal),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Division (result scale `s₁ + 4`).
    Div(Box<Expr>, Box<Expr>),
    /// Integer modulo (result scale 0).
    Mod(Box<Expr>, Box<Expr>),
}

// Consuming builder methods named after the SQL operators they emit;
// implementing the std operator traits would require `Clone` bounds the
// call sites don't want.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Column reference helper.
    pub fn col(index: usize, ty: DecimalType, name: impl Into<String>) -> Expr {
        Expr::Col { index, ty, name: name.into() }
    }

    /// Literal helper: parses with the smallest sufficient type (§III-D2's
    /// "1.23 is DECIMAL(3, 2)").
    pub fn lit(text: &str) -> Result<Expr, NumError> {
        Ok(Expr::Const(UpDecimal::parse_literal(text)?))
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// `self / rhs`.
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }

    /// `self % rhs`.
    pub fn rem(self, rhs: Expr) -> Expr {
        Expr::Mod(Box::new(self), Box::new(rhs))
    }

    /// Unary minus.
    pub fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }

    /// Infers the result type bottom-up (§III-B3). The JIT calls this "in
    /// a bottom-up manner from an expression tree parsed", which lets it
    /// size every intermediate at compile time.
    pub fn dtype(&self) -> DecimalType {
        match self {
            Expr::Col { ty, .. } => *ty,
            Expr::Const(c) => c.dtype(),
            Expr::Neg(e) => e.dtype().neg_result(),
            Expr::Add(a, b) | Expr::Sub(a, b) => a.dtype().add_result(&b.dtype()),
            Expr::Mul(a, b) => a.dtype().mul_result(&b.dtype()),
            Expr::Div(a, b) => a.dtype().div_result(&b.dtype()),
            Expr::Mod(a, b) => a.dtype().mod_result(&b.dtype()),
        }
    }

    /// Evaluates against one tuple's column values — the CPU reference
    /// semantics for every generated kernel.
    pub fn eval_row(&self, cols: &[UpDecimal]) -> Result<UpDecimal, NumError> {
        match self {
            Expr::Col { index, ty, name } => {
                let v = cols.get(*index).ok_or_else(|| {
                    NumError::Parse(format!("column {name} (#{index}) missing from row"))
                })?;
                debug_assert_eq!(v.dtype(), *ty, "column {name} type mismatch");
                Ok(v.clone())
            }
            Expr::Const(c) => Ok(c.clone()),
            Expr::Neg(e) => Ok(e.eval_row(cols)?.neg()),
            Expr::Add(a, b) => Ok(a.eval_row(cols)?.add(&b.eval_row(cols)?)),
            Expr::Sub(a, b) => Ok(a.eval_row(cols)?.sub(&b.eval_row(cols)?)),
            Expr::Mul(a, b) => Ok(a.eval_row(cols)?.mul(&b.eval_row(cols)?)),
            Expr::Div(a, b) => a.eval_row(cols)?.div(&b.eval_row(cols)?),
            Expr::Mod(a, b) => a.eval_row(cols)?.rem(&b.eval_row(cols)?),
        }
    }

    /// Column indices referenced, in first-use order without duplicates.
    pub fn columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit_cols(&mut |i| {
            if !out.contains(&i) {
                out.push(i);
            }
        });
        out
    }

    fn visit_cols(&self, f: &mut impl FnMut(usize)) {
        match self {
            Expr::Col { index, .. } => f(*index),
            Expr::Const(_) => {}
            Expr::Neg(e) => e.visit_cols(f),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) | Expr::Mod(a, b) => {
                a.visit_cols(f);
                b.visit_cols(f);
            }
        }
    }

    /// True iff no column is referenced — the sub-expression can be
    /// pre-calculated at compile time (§III-D2).
    pub fn is_const(&self) -> bool {
        match self {
            Expr::Col { .. } => false,
            Expr::Const(_) => true,
            Expr::Neg(e) => e.is_const(),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) | Expr::Mod(a, b) => {
                a.is_const() && b.is_const()
            }
        }
    }

    /// Number of arithmetic operator nodes.
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Col { .. } | Expr::Const(_) => 0,
            Expr::Neg(e) => 1 + e.op_count(),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) | Expr::Mod(a, b) => {
                1 + a.op_count() + b.op_count()
            }
        }
    }

    /// Structural signature used as the kernel-cache key: two expressions
    /// with the same signature compile to the same kernel.
    pub fn signature(&self) -> String {
        match self {
            Expr::Col { index, ty, .. } => format!("c{index}:{}:{}", ty.precision, ty.scale),
            Expr::Const(c) => format!("k({}:{}:{})", c.unscaled(), c.dtype().precision, c.dtype().scale),
            Expr::Neg(e) => format!("neg({})", e.signature()),
            Expr::Add(a, b) => format!("add({},{})", a.signature(), b.signature()),
            Expr::Sub(a, b) => format!("sub({},{})", a.signature(), b.signature()),
            Expr::Mul(a, b) => format!("mul({},{})", a.signature(), b.signature()),
            Expr::Div(a, b) => format!("div({},{})", a.signature(), b.signature()),
            Expr::Mod(a, b) => format!("mod({},{})", a.signature(), b.signature()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ty(p: u32, s: u32) -> DecimalType {
        DecimalType::new_unchecked(p, s)
    }

    fn d(s: &str, p: u32, sc: u32) -> UpDecimal {
        UpDecimal::parse(s, ty(p, sc)).unwrap()
    }

    #[test]
    fn typing_is_bottom_up() {
        // Fig. 6's tree: a + b×c + d − e with (12,5)·(12,5) → (24,10).
        let e = Expr::col(0, ty(12, 2), "a")
            .add(Expr::col(1, ty(12, 5), "b").mul(Expr::col(2, ty(12, 5), "c")))
            .add(Expr::col(3, ty(12, 2), "d"))
            .sub(Expr::col(4, ty(12, 2), "e"));
        let t = e.dtype();
        assert_eq!(t.scale, 10); // dominated by the product's scale
        assert!(t.precision > t.scale);
    }

    #[test]
    fn eval_row_matches_manual() {
        let e = Expr::col(0, ty(4, 2), "c1").add(Expr::col(1, ty(4, 1), "c2"));
        let row = vec![d("1.23", 4, 2), d("1.1", 4, 1)];
        assert_eq!(e.eval_row(&row).unwrap().to_string(), "2.33");
    }

    #[test]
    fn eval_row_full_operator_mix() {
        // (a - b) * 2 / c % 7
        let e = Expr::col(0, ty(6, 1), "a")
            .sub(Expr::col(1, ty(6, 1), "b"))
            .mul(Expr::lit("2").unwrap())
            .div(Expr::col(2, ty(3, 0), "c"))
            .rem(Expr::lit("7").unwrap());
        let row = vec![d("100.5", 6, 1), d("0.5", 6, 1), d("4", 3, 0)];
        // (100.0) * 2 / 4 = 50.00000 → % 7 = 1
        assert_eq!(e.eval_row(&row).unwrap().to_string(), "1");
    }

    #[test]
    fn columns_and_constness() {
        let e = Expr::lit("1").unwrap().add(Expr::col(2, ty(4, 0), "x")).mul(Expr::lit("3").unwrap());
        assert_eq!(e.columns(), vec![2]);
        assert!(!e.is_const());
        let c = Expr::lit("1").unwrap().add(Expr::lit("2").unwrap());
        assert!(c.is_const());
        assert_eq!(c.op_count(), 1);
    }

    #[test]
    fn signatures_distinguish_types_and_shapes() {
        let a = Expr::col(0, ty(4, 2), "a").add(Expr::col(1, ty(4, 1), "b"));
        let b = Expr::col(0, ty(4, 2), "a").add(Expr::col(1, ty(4, 2), "b"));
        let c = Expr::col(0, ty(4, 2), "a").sub(Expr::col(1, ty(4, 1), "b"));
        assert_ne!(a.signature(), b.signature());
        assert_ne!(a.signature(), c.signature());
        // Same shape ⇒ same signature regardless of names.
        let a2 = Expr::col(0, ty(4, 2), "x").add(Expr::col(1, ty(4, 1), "y"));
        assert_eq!(a.signature(), a2.signature());
    }

    #[test]
    fn division_by_zero_propagates() {
        let e = Expr::col(0, ty(4, 0), "a").div(Expr::lit("0").unwrap());
        let row = vec![d("5", 4, 0)];
        assert!(e.eval_row(&row).is_err());
    }
}

impl core::fmt::Display for Expr {
    /// Renders as SQL-ish text with minimal parentheses — used by EXPLAIN
    /// output and diagnostics.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        fn prec(e: &Expr) -> u8 {
            match e {
                Expr::Add(..) | Expr::Sub(..) => 1,
                Expr::Mul(..) | Expr::Div(..) | Expr::Mod(..) => 2,
                Expr::Neg(..) => 3,
                Expr::Col { .. } | Expr::Const(_) => 4,
            }
        }
        fn go(e: &Expr, parent: u8, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            let mine = prec(e);
            let need = mine < parent;
            if need {
                write!(f, "(")?;
            }
            match e {
                Expr::Col { name, .. } => write!(f, "{name}")?,
                Expr::Const(c) => write!(f, "{c}")?,
                Expr::Neg(x) => {
                    write!(f, "-")?;
                    go(x, mine, f)?;
                }
                Expr::Add(a, b) => {
                    go(a, mine, f)?;
                    write!(f, " + ")?;
                    go(b, mine + 1, f)?;
                }
                Expr::Sub(a, b) => {
                    go(a, mine, f)?;
                    write!(f, " - ")?;
                    go(b, mine + 1, f)?;
                }
                Expr::Mul(a, b) => {
                    go(a, mine, f)?;
                    write!(f, " * ")?;
                    go(b, mine + 1, f)?;
                }
                Expr::Div(a, b) => {
                    go(a, mine, f)?;
                    write!(f, " / ")?;
                    go(b, mine + 1, f)?;
                }
                Expr::Mod(a, b) => {
                    go(a, mine, f)?;
                    write!(f, " % ")?;
                    go(b, mine + 1, f)?;
                }
            }
            if need {
                write!(f, ")")?;
            }
            Ok(())
        }
        go(self, 0, f)
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    fn ty(p: u32, s: u32) -> DecimalType {
        DecimalType::new_unchecked(p, s)
    }

    #[test]
    fn renders_with_minimal_parens() {
        let a = || Expr::col(0, ty(12, 2), "a");
        let b = || Expr::col(1, ty(12, 2), "b");
        assert_eq!(a().add(b()).mul(a()).to_string(), "(a + b) * a");
        assert_eq!(a().mul(b()).add(a()).to_string(), "a * b + a");
        assert_eq!(a().sub(b().sub(a())).to_string(), "a - (b - a)");
        assert_eq!(a().neg().mul(b()).to_string(), "-a * b");
        let e = Expr::lit("0.25").unwrap().mul(a().add(b()));
        assert_eq!(e.to_string(), "0.25 * (a + b)");
    }
}
