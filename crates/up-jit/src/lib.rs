#![warn(missing_docs)]
//! # up-jit — the JIT expression-compilation framework
//!
//! The paper's core contribution: decimal expressions are compiled
//! just-in-time into per-(p, s) specialized GPU kernels. This crate holds
//! the typed expression tree over columns, constants and the five decimal operators ([`expr`]), the §III-D rewrites — binary↔n-ary
//! conversion ([`nary`]), alignment scheduling ([`schedule`]) and constant
//! optimization ([`constfold`]) — the code generator emitting the PTX-like
//! ISA ([`codegen`]), the multi-threaded (TPI) variant ([`codegen_mt`]),
//! and the kernel cache with compile-time accounting ([`cache`]), plus
//! the cross-query compile arena the server's pipeline arena builds on
//! ([`arena`]).

pub mod arena;
pub mod cache;
pub mod codegen;
pub mod codegen_mt;
pub mod constfold;
pub mod expr;
pub mod nary;
pub mod schedule;

pub use arena::{CompileArena, CompileArenaStats};
pub use cache::{JitEngine, JitOptions};
pub use codegen::{compile_expr, CompiledExpr};
pub use expr::Expr;
pub use nary::NExpr;
pub use schedule::{alignment_count, schedule_alignment};
