//! Binary ↔ n-ary expression conversion — steps 1–3 and 5 of the
//! alignment-scheduling rewrite (§III-D1):
//!
//! 1. the expression arrives as a binary tree;
//! 2. subtractions become additions of a unary-negated subtrahend;
//! 3. neighboring addition (and multiplication) levels collapse into one
//!    n-ary node;
//! 5. after scheduling, the n-ary tree converts back to a binary tree for
//!    code generation.
//!
//! Scales propagate through the n-ary tree exactly as Fig. 6 annotates:
//! "'×' sums the scale of its operands and the unary negation '−'
//! inherits the scale".

use crate::expr::Expr;
use up_num::UpDecimal;

/// N-ary expression node.
#[derive(Clone, Debug, PartialEq)]
pub enum NExpr {
    /// Column leaf.
    Col {
        /// Input slot.
        index: usize,
        /// Declared type.
        ty: up_num::DecimalType,
        /// Diagnostic name.
        name: String,
    },
    /// Constant leaf.
    Const(UpDecimal),
    /// Unary negation (scale inherited).
    Neg(Box<NExpr>),
    /// N-ary addition (collapsed `+` levels).
    Sum(Vec<NExpr>),
    /// N-ary multiplication (collapsed `×` levels).
    Prod(Vec<NExpr>),
    /// Division (kept binary).
    Div(Box<NExpr>, Box<NExpr>),
    /// Modulo (kept binary).
    Mod(Box<NExpr>, Box<NExpr>),
}

impl NExpr {
    /// Converts a binary tree: rewrites `a − b` as `a + (−b)` and
    /// collapses neighboring `+`/`×` levels.
    pub fn from_expr(e: &Expr) -> NExpr {
        match e {
            Expr::Col { index, ty, name } => {
                NExpr::Col { index: *index, ty: *ty, name: name.clone() }
            }
            Expr::Const(c) => NExpr::Const(c.clone()),
            Expr::Neg(inner) => match NExpr::from_expr(inner) {
                NExpr::Neg(x) => *x, // −(−x) = x
                other => NExpr::Neg(Box::new(other)),
            },
            Expr::Add(a, b) => {
                let mut children = Vec::new();
                flatten_sum(NExpr::from_expr(a), &mut children);
                flatten_sum(NExpr::from_expr(b), &mut children);
                NExpr::Sum(children)
            }
            Expr::Sub(a, b) => {
                let mut children = Vec::new();
                flatten_sum(NExpr::from_expr(a), &mut children);
                // Step 2: "the subtrahend is converted into a two-level
                // subtree with the unary negation operator as its root".
                flatten_sum(negate(NExpr::from_expr(b)), &mut children);
                NExpr::Sum(children)
            }
            Expr::Mul(a, b) => {
                let mut children = Vec::new();
                flatten_prod(NExpr::from_expr(a), &mut children);
                flatten_prod(NExpr::from_expr(b), &mut children);
                NExpr::Prod(children)
            }
            Expr::Div(a, b) => {
                NExpr::Div(Box::new(NExpr::from_expr(a)), Box::new(NExpr::from_expr(b)))
            }
            Expr::Mod(a, b) => {
                NExpr::Mod(Box::new(NExpr::from_expr(a)), Box::new(NExpr::from_expr(b)))
            }
        }
    }

    /// Converts back to a binary tree (left-fold in child order), turning
    /// `x + (−y)` back into `x − y` so codegen emits subtractions.
    pub fn to_expr(&self) -> Expr {
        match self {
            NExpr::Col { index, ty, name } => Expr::Col { index: *index, ty: *ty, name: name.clone() },
            NExpr::Const(c) => Expr::Const(c.clone()),
            NExpr::Neg(x) => Expr::Neg(Box::new(x.to_expr())),
            NExpr::Sum(children) => {
                assert!(!children.is_empty(), "empty Sum");
                let mut it = children.iter();
                let mut acc = it.next().expect("non-empty").to_expr();
                for child in it {
                    acc = match child {
                        NExpr::Neg(x) => acc.sub(x.to_expr()),
                        other => acc.add(other.to_expr()),
                    };
                }
                acc
            }
            NExpr::Prod(children) => {
                assert!(!children.is_empty(), "empty Prod");
                let mut it = children.iter();
                let mut acc = it.next().expect("non-empty").to_expr();
                for child in it {
                    acc = acc.mul(child.to_expr());
                }
                acc
            }
            NExpr::Div(a, b) => a.to_expr().div(b.to_expr()),
            NExpr::Mod(a, b) => a.to_expr().rem(b.to_expr()),
        }
    }

    /// The node's result scale, per the Fig. 6 annotations.
    pub fn scale(&self) -> u32 {
        match self {
            NExpr::Col { ty, .. } => ty.scale,
            NExpr::Const(c) => c.dtype().scale,
            NExpr::Neg(x) => x.scale(),
            NExpr::Sum(children) => children.iter().map(NExpr::scale).max().unwrap_or(0),
            NExpr::Prod(children) => children.iter().map(NExpr::scale).sum(),
            NExpr::Div(a, _) => a.scale() + up_num::DIV_EXTRA_SCALE,
            NExpr::Mod(_, _) => 0,
        }
    }

    /// True iff no column is referenced (compile-time evaluable, §III-D2).
    pub fn is_const(&self) -> bool {
        match self {
            NExpr::Col { .. } => false,
            NExpr::Const(_) => true,
            NExpr::Neg(x) => x.is_const(),
            NExpr::Sum(c) | NExpr::Prod(c) => c.iter().all(NExpr::is_const),
            NExpr::Div(a, b) | NExpr::Mod(a, b) => a.is_const() && b.is_const(),
        }
    }
}

fn flatten_sum(n: NExpr, out: &mut Vec<NExpr>) {
    match n {
        NExpr::Sum(children) => out.extend(children),
        other => out.push(other),
    }
}

fn flatten_prod(n: NExpr, out: &mut Vec<NExpr>) {
    match n {
        NExpr::Prod(children) => out.extend(children),
        other => out.push(other),
    }
}

/// Negates an n-ary node, distributing over sums so `a − (b + c)` becomes
/// `a + (−b) + (−c)` and double negations cancel.
fn negate(n: NExpr) -> NExpr {
    match n {
        NExpr::Neg(x) => *x,
        NExpr::Sum(children) => NExpr::Sum(children.into_iter().map(negate).collect()),
        NExpr::Const(c) => NExpr::Const(c.neg()),
        other => NExpr::Neg(Box::new(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use up_num::DecimalType;

    fn ty(p: u32, s: u32) -> DecimalType {
        DecimalType::new_unchecked(p, s)
    }

    fn col(i: usize, s: u32) -> Expr {
        Expr::col(i, ty(12, s), format!("c{i}"))
    }

    #[test]
    fn fig6_collapse() {
        // a + b×c + d − e → Sum[a, Prod[b, c], d, Neg(e)].
        let e = col(0, 2)
            .add(col(1, 5).mul(col(2, 5)))
            .add(col(3, 2))
            .sub(col(4, 2));
        let n = NExpr::from_expr(&e);
        match &n {
            NExpr::Sum(children) => {
                assert_eq!(children.len(), 4);
                assert!(matches!(children[1], NExpr::Prod(_)));
                assert!(matches!(children[3], NExpr::Neg(_)));
                // Scale annotations from Fig. 6.
                assert_eq!(children[1].scale(), 10); // × sums scales
                assert_eq!(children[3].scale(), 2); // − inherits
            }
            other => panic!("expected Sum, got {other:?}"),
        }
        assert_eq!(n.scale(), 10);
    }

    #[test]
    fn sub_of_sum_distributes_negation() {
        // a − (b + c) → Sum[a, −b, −c]
        let e = col(0, 1).sub(col(1, 1).add(col(2, 1)));
        match NExpr::from_expr(&e) {
            NExpr::Sum(children) => {
                assert_eq!(children.len(), 3);
                assert!(matches!(children[1], NExpr::Neg(_)));
                assert!(matches!(children[2], NExpr::Neg(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn double_negation_cancels() {
        let e = col(0, 1).sub(col(1, 1).neg());
        match NExpr::from_expr(&e) {
            NExpr::Sum(children) => {
                assert!(matches!(children[1], NExpr::Col { .. }), "{children:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn round_trip_preserves_value() {
        let e = col(0, 2)
            .add(col(1, 5).mul(col(2, 5)))
            .add(col(3, 2))
            .sub(col(4, 2));
        let back = NExpr::from_expr(&e).to_expr();
        let row: Vec<_> = (0..5)
            .map(|i| {
                let s = if i == 1 || i == 2 { 5 } else { 2 };
                up_num::UpDecimal::from_scaled_i64((i as i64 + 1) * 137, ty(12, s)).unwrap()
            })
            .collect();
        let v1 = e.eval_row(&row).unwrap();
        let v2 = back.eval_row(&row).unwrap();
        assert_eq!(v1.cmp_value(&v2), core::cmp::Ordering::Equal);
    }

    #[test]
    fn to_expr_restores_subtractions() {
        let e = col(0, 1).sub(col(1, 1));
        let back = NExpr::from_expr(&e).to_expr();
        assert!(matches!(back, Expr::Sub(_, _)), "{back:?}");
    }

    #[test]
    fn constant_negation_folds_into_literal() {
        let e = col(0, 1).sub(Expr::lit("3").unwrap());
        match NExpr::from_expr(&e) {
            NExpr::Sum(children) => match &children[1] {
                NExpr::Const(c) => assert_eq!(c.to_string(), "-3"),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }
}
