//! The query service over real TCP: a `WireServer` in front of
//! `UpServer`, two tenants with different quotas and admission weights,
//! and `up_net::Client` connections exercising queries, quota
//! rejections, and the metrics report — all over loopback.
//!
//! ```sh
//! cargo run --release --example wire_service
//! ```
//!
//! The listen address, connection cap, and idle timeout come from
//! `UP_NET_ADDR`, `UP_NET_MAX_CONNS`, and `UP_NET_IDLE_S` when set.

use std::sync::Arc;
use ultraprecise::prelude::*;
use up_net::ErrorCode;

fn main() {
    // The backing service: the usual in-process UpServer.
    let up = Arc::new(UpServer::new(ServerConfig { arena: true, ..ServerConfig::default() }));
    let t = DecimalType::new(12, 2).unwrap();
    up.create_table("ledger", Schema::new(vec![("amount", ColumnType::Decimal(t))]));
    up.insert_many(
        "ledger",
        ["0.10", "0.20", "0.30", "1999.99", "-250.75"]
            .map(|s| vec![Value::Decimal(UpDecimal::parse(s, t).unwrap())]),
    )
    .unwrap();

    // Two tenants: "analytics" gets twice the admission weight;
    // "batch" is rate-limited to a 2-query burst.
    let tenants = Arc::new(TenantRegistry::new());
    tenants.register(
        "analytics",
        "token-a",
        TenantQuota { weight: 2.0, ..TenantQuota::default() },
    );
    tenants.register(
        "batch",
        "token-b",
        TenantQuota { qps: 0.5, burst: 2.0, weight: 1.0, ..TenantQuota::default() },
    );

    // The wire front end (UP_NET_* env knobs override the defaults).
    let mut server = WireServer::start(Arc::clone(&up), tenants, NetConfig::default())
        .expect("bind wire server");
    println!("wire server listening on {} ({} backend)\n", server.addr(), server.mode().name());

    // A tenant connection is a plain blocking client.
    let mut analytics =
        Client::connect(server.addr(), "analytics", "token-a").expect("connect analytics");
    let rows = analytics.query("SELECT SUM(amount) FROM ledger").unwrap();
    println!("analytics: SUM(amount) = {}", rows.rows[0][0]);
    let rows = analytics
        .query("SELECT amount FROM ledger WHERE amount > 0 ORDER BY amount DESC LIMIT 3")
        .unwrap();
    println!("analytics: top positives = {:?}", rows.rows);

    // The rate-limited tenant burns its burst, then gets throttled with
    // the stable RateLimited code.
    let mut batch = Client::connect(server.addr(), "batch", "token-b").expect("connect batch");
    for i in 1..=3 {
        match batch.query("SELECT COUNT(*) FROM ledger") {
            Ok(r) => println!("batch: query {i} ok -> {}", r.rows[0][0]),
            Err(e) => {
                assert_eq!(e.remote_code(), Some(ErrorCode::RateLimited));
                println!("batch: query {i} throttled ({e})");
            }
        }
    }

    // Bad credentials bounce with Unauthorized, not a hang.
    let err = Client::connect(server.addr(), "batch", "wrong-token").unwrap_err();
    println!("bad token -> {err}");

    // The metrics report covers the service, every tenant, and the wire.
    println!("\n{}", analytics.metrics().unwrap());

    analytics.goodbye().unwrap();
    batch.goodbye().unwrap();
    server.shutdown();
}
