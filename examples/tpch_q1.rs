//! TPC-H Q1 end to end — the paper's §IV-D1 experiment, with the
//! compile/execute split it reports.
//!
//! ```sh
//! cargo run --release --example tpch_q1
//! ```

use ultraprecise::prelude::*;
use ultraprecise::up_workloads::tpch;

fn main() {
    let cfg = tpch::TpchConfig { lineitem_rows: 20_000, seed: 7, extended_precision: None };
    println!("Loading TPC-H (lineitem = {} rows)…", cfg.lineitem_rows);

    let mut db = Database::new(Profile::UltraPrecise);
    tpch::load(&mut db, cfg);

    println!("Running Q1 on the UltraPrecise profile…\n");
    let r = db.query(tpch::q1_sql()).unwrap();

    // Print the classic Q1 result grid.
    let headers = ["rf", "ls", "sum_qty", "sum_base_price", "sum_disc_price", "sum_charge", "avg_qty", "avg_price", "count"];
    println!(
        "{:<3} {:<3} {:>12} {:>16} {:>18} {:>20} {:>12} {:>14} {:>7}",
        headers[0], headers[1], headers[2], headers[3], headers[4], headers[5], headers[6], headers[7], headers[8]
    );
    for row in &r.rows {
        println!(
            "{:<3} {:<3} {:>12} {:>16} {:>18} {:>20} {:>12} {:>14} {:>7}",
            row[0].render(),
            row[1].render(),
            trim(&row[2].render(), 12),
            trim(&row[3].render(), 16),
            trim(&row[4].render(), 18),
            trim(&row[5].render(), 20),
            trim(&row[6].render(), 12),
            trim(&row[7].render(), 14),
            row[8].render(),
        );
    }

    println!("\nTiming (modeled, the way §IV-D1 reports it):");
    println!("  compile : {:>8.1} ms  ({} kernels JIT-compiled)", r.modeled.compile_s * 1e3, r.kernels);
    println!("  kernel  : {:>8.3} ms", r.modeled.kernel_s * 1e3);
    println!("  PCIe    : {:>8.3} ms", r.modeled.pcie_s * 1e3);
    println!("  scan    : {:>8.3} ms (excluded by the paper for Q1 — reported for reference)", r.modeled.scan_s * 1e3);
    let frac = r.modeled.compile_s / (r.modeled.compile_s + r.modeled.kernel_s + r.modeled.pcie_s);
    println!("  compile fraction: {:.0}% (the paper sees 47% at LEN=2 falling to 7% at LEN=32)", frac * 100.0);

    // Re-run: kernels come from the cache.
    let r2 = db.query(tpch::q1_sql()).unwrap();
    println!("\nRe-run with a warm kernel cache: compile {:.1} ms", r2.modeled.compile_s * 1e3);
}

fn trim(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}
