//! RSA encryption in SQL — the paper's §IV-D3 workload (Query 4).
//!
//! Generates a real RSA key (Miller–Rabin primes), loads a message
//! column, encrypts every message with one SQL statement computing
//! `X³ mod N`, and verifies against the CPU ground truth.
//!
//! ```sh
//! cargo run --release --example rsa_encryption
//! ```

use ultraprecise::prelude::*;
use ultraprecise::up_workloads::rsa;

fn main() {
    let message_precision = 35; // one of the paper's sizes: 17/35/71/143
    let n_messages = 2_000;

    println!("Generating a {}-digit RSA modulus…", rsa::modulus_precision(message_precision));
    let w = rsa::build(message_precision, n_messages, 0xC0FFEE);
    println!("  p = {}", w.key.p);
    println!("  q = {}", w.key.q);
    println!("  N = {} ({} digits)", w.key.n, w.key.n.dec_digits());

    let mut db = Database::new(Profile::UltraPrecise);
    db.create_table("r4", Schema::new(vec![("c1", ColumnType::Decimal(w.msg_ty))]));
    for m in &w.messages {
        db.insert("r4", vec![Value::Decimal(m.clone())]).unwrap();
    }

    // Query 4: SELECT c1 * c1 % N * c1 % N FROM R4  —  X³ mod N.
    let sql = rsa::query4_sql(&w.key.n);
    println!("\nExecuting: {}…", &sql[..70.min(sql.len())]);
    let r = db.query(&sql).unwrap();

    // Verify every ciphertext against the host's modular exponentiation.
    let truth = rsa::ground_truth(&w);
    let mut ok = 0;
    for (row, expect) in r.rows.iter().zip(&truth) {
        let Value::Decimal(c) = &row[0] else { panic!("decimal ciphertext") };
        assert_eq!(
            c.unscaled().mag_to_dec_string(),
            expect.mag_to_dec_string(),
            "ciphertext mismatch"
        );
        ok += 1;
    }
    println!("Encrypted and verified {ok} messages — all ciphertexts exact.");
    println!("\nSample:");
    for i in 0..3 {
        println!("  msg  {}", w.messages[i]);
        let Value::Decimal(c) = &r.rows[i][0] else { unreachable!() };
        println!("  ct   {c}");
    }
    println!(
        "\nModeled GPU time: kernel {:.2} ms + PCIe {:.2} ms + compile {:.0} ms",
        r.modeled.kernel_s * 1e3,
        r.modeled.pcie_s * 1e3,
        r.modeled.compile_s * 1e3
    );
}
