//! Taylor-series trigonometry in SQL — the paper's §IV-D4 workload
//! (Query 5, Fig. 15).
//!
//! Approximates `sin(x + ε)` for radians near π/4 with polynomials of
//! growing length, showing how the mean absolute error collapses as
//! terms are added and how the intermediate-precision rules (§III-B3)
//! size every term automatically.
//!
//! ```sh
//! cargo run --release --example trig_approx
//! ```

use ultraprecise::prelude::*;
use ultraprecise::up_workloads::{datagen, trig};

fn main() {
    let n = 1_000;
    let ty = trig::radian_type(); // DECIMAL(9, 8)
    let regime = trig::Regime::NearQuarterPi;

    // Radians ~ N(0.78, 0.01²), exactly as Fig. 15's middle panel.
    let radians = datagen::normal_radian_column(n, ty, regime.mean(), 0.01, 0x51AE);
    let mut db = Database::new(Profile::UltraPrecise);
    db.create_table("r5", Schema::new(vec![("c2", ColumnType::Decimal(ty))]));
    for x in &radians {
        db.insert("r5", vec![Value::Decimal(x.clone())]).unwrap();
    }

    // Ground truth at 300 fractional digits (the paper's GMP role).
    let truth: Vec<UpDecimal> = radians.iter().map(|x| trig::sin_ground_truth(x, 300)).collect();

    println!("sin(0.78 + ε) via SQL Taylor polynomials over {} rows:\n", n);
    println!("{:>5} {:>14} {:>12} {:>28}", "terms", "MAE", "kernel ms", "sample result");
    for terms in 2..=11 {
        let sql = trig::taylor_sql(regime.column(), terms);
        let r = db.query(&sql).unwrap();
        let approx: Vec<UpDecimal> = r
            .rows
            .iter()
            .map(|row| match &row[0] {
                Value::Decimal(d) => d.clone(),
                other => panic!("{other:?}"),
            })
            .collect();
        let mae = trig::mean_absolute_error(&approx, &truth);
        println!(
            "{terms:>5} {mae:>14.3e} {:>12.3} {:>28}",
            r.modeled.kernel_s * 1e3,
            shorten(&approx[0].to_string(), 26),
        );
    }
    println!(
        "\nEach extra term multiplies three more DECIMAL(9,8) factors and divides \
         by the factorial constant — the §III-B3 rules size every intermediate \
         at compile time, and the error floor comes from the division scale \
         s₁+4 (the paper's Fig. 15 discussion)."
    );
}

fn shorten(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n])
    }
}
