//! Quickstart: create a table of high-precision decimals, run SQL on the
//! UltraPrecise (GPU + JIT) profile, and inspect the timing breakdown.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ultraprecise::prelude::*;

fn main() {
    // A database running the UltraPrecise execution profile: DECIMAL
    // expressions JIT-compile into specialized kernels for the simulated
    // GPU; results are bit-exact.
    let mut db = Database::new(Profile::UltraPrecise);

    // DECIMAL(35, 5) is far beyond what a 64-bit word can hold — the
    // "high-p" regime of the paper's Fig. 1.
    let ty = DecimalType::new(35, 5).unwrap();
    db.create_table("measurements", Schema::new(vec![("reading", ColumnType::Decimal(ty))]));

    for i in 0..1000i64 {
        let v = UpDecimal::parse(
            &format!("123456789012345678901234567890.{:05}", i % 100_000),
            ty,
        )
        .unwrap();
        db.insert("measurements", vec![Value::Decimal(v)]).unwrap();
    }

    // Exactness: the sum of 1000 copies of ~1.23e29 has every digit right.
    let r = db
        .query("SELECT SUM(reading + reading) AS doubled FROM measurements")
        .unwrap();
    println!("SUM(reading + reading) = {}", r.rows[0][0].render());

    // The modeled time splits the way the paper reports it.
    println!("\nModeled execution breakdown:");
    println!("  scan    : {:>9.3} ms", r.modeled.scan_s * 1e3);
    println!("  PCIe    : {:>9.3} ms", r.modeled.pcie_s * 1e3);
    println!("  compile : {:>9.3} ms  (JIT, first run — cached afterwards)", r.modeled.compile_s * 1e3);
    println!("  kernel  : {:>9.3} ms", r.modeled.kernel_s * 1e3);
    println!("  total   : {:>9.3} ms", r.modeled.total() * 1e3);
    println!("  kernels launched: {}", r.kernels);

    // Second run: the kernel cache answers, compile time disappears.
    let r2 = db
        .query("SELECT SUM(reading + reading) AS doubled FROM measurements")
        .unwrap();
    println!("\nSecond run compile time: {:.3} ms (cache hit)", r2.modeled.compile_s * 1e3);
    let stats = db.jit_stats();
    println!(
        "JIT cache: {} hits / {} misses ({}/{} kernels resident)",
        stats.hits, stats.misses, stats.entries, stats.capacity
    );

    // The same schema on a DOUBLE engine silently loses digits.
    let mut dbl = Database::new(Profile::DoubleF64);
    dbl.create_table("measurements", Schema::new(vec![("reading", ColumnType::Decimal(ty))]));
    for i in 0..1000i64 {
        let v = UpDecimal::parse(
            &format!("123456789012345678901234567890.{:05}", i % 100_000),
            ty,
        )
        .unwrap();
        dbl.insert("measurements", vec![Value::Decimal(v)]).unwrap();
    }
    let rd = dbl
        .query("SELECT SUM(reading + reading) AS doubled FROM measurements")
        .unwrap();
    println!("\nDOUBLE engine says: {}", rd.rows[0][0].render());
    println!("(53-bit mantissas cannot carry 35 decimal digits — compare the tails)");
}
