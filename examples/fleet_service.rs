//! The query service over a simulated four-device GPU fleet: eligible
//! scans and aggregations shard across the devices (results and modeled
//! times bit-identical to single-device), launches route round-robin
//! across per-device stream pools, and the dashboard grows per-device
//! utilization lines.
//!
//! ```sh
//! cargo run --release --example fleet_service
//! ```

use std::sync::Arc;
use ultraprecise::prelude::*;

fn main() {
    // Four A6000-class devices behind one server: the engine range-shards
    // base tables at throughput-weighted bounds, executes each shard's
    // partial aggregate, prices the exchange of partials back to device 0
    // on the PCIe model, and merges in fixed device order — so the answer
    // (and every ModeledTime component) is bit-identical to one device.
    let server = Arc::new(UpServer::new(ServerConfig {
        devices: 4,
        arena: true,
        pipeline: PipelineMode::On(4),
        ..ServerConfig::default()
    }));

    let ty = DecimalType::new(40, 8).unwrap();
    server.create_table(
        "ledger",
        Schema::new(vec![
            ("amount", ColumnType::Decimal(ty)),
            ("rate", ColumnType::Decimal(ty)),
        ]),
    );
    let rows: Vec<Vec<Value>> = (0..4096i64)
        .map(|i| {
            let a = UpDecimal::from_scaled_i64(i * 982_451_653 % 900_000_000, ty).unwrap();
            let r = UpDecimal::from_scaled_i64(100_000_000 + i % 7_500_000, ty).unwrap();
            vec![Value::Decimal(a), Value::Decimal(r)]
        })
        .collect();
    server.insert_many("ledger", rows).unwrap();

    // A handful of clients running fleet-shardable aggregations.
    let queries = [
        "SELECT SUM(amount * rate) FROM ledger",
        "SELECT AVG(amount), MIN(amount), MAX(amount) FROM ledger",
        "SELECT SUM(amount + rate), COUNT(*) FROM ledger",
    ];
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let session = server.connect(Profile::UltraPrecise);
                for i in 0..6 {
                    let sql = queries[(c + i) % queries.len()];
                    match server.query(session, sql) {
                        Ok(r) => {
                            if c == 0 && i < queries.len() {
                                let f = r.fleet.expect("fleet report rides every result");
                                println!(
                                    "client {c}: {sql}\n  -> {} row(s); shards {:?} rows, \
                                     exchange {} B / {:.3} µs, modeled {:.3} ms -> {:.3} ms \
                                     ({:.2}x at {} devices)",
                                    r.rows.len(),
                                    f.partition_rows,
                                    f.exchange_bytes,
                                    f.exchange_s * 1e6,
                                    f.single_device_s * 1e3,
                                    f.makespan_s * 1e3,
                                    f.speedup,
                                    f.devices,
                                );
                            }
                        }
                        Err(e) => println!("client {c}: {sql} -> {e}"),
                    }
                }
                server.disconnect(session);
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    // The dashboard now carries a fleet block: per-device routed counts
    // plus each device's placed DAGs and modeled pool utilization.
    println!();
    print!("{}", server.metrics().report());

    // The same per-device breakdown, programmatically.
    println!();
    for d in server.fleet_stats().expect("arena is enabled above") {
        println!(
            "device {}: {} queries / {} nodes placed, h2d {:.3} µs, exec {:.3} µs, \
             queued {:.3} µs, copy {:.2}% / streams {:.2}% of the global makespan",
            d.device,
            d.queries,
            d.nodes,
            d.h2d_s * 1e6,
            d.exec_s * 1e6,
            d.queue_s * 1e6,
            d.copy_utilization * 100.0,
            d.stream_utilization * 100.0,
        );
    }
}
