//! Inspect what the JIT actually generates: compile the paper's Listing 1
//! expression (`DECIMAL(4,2) + DECIMAL(4,1)`), print the PTX-flavoured
//! disassembly, and show how the §III-D optimizations change the
//! instruction mix.
//!
//! ```sh
//! cargo run --release --example inspect_kernel
//! ```

use ultraprecise::up_gpusim::disasm;
use ultraprecise::up_jit::cache::{Compiled, JitEngine, JitOptions};
use ultraprecise::up_jit::Expr;
use ultraprecise::up_num::DecimalType;

fn main() {
    // Listing 1's expression: c1 DECIMAL(4,2) + c2 DECIMAL(4,1).
    let c1 = Expr::col(0, DecimalType::new(4, 2).unwrap(), "c1_4_2");
    let c2 = Expr::col(1, DecimalType::new(4, 1).unwrap(), "c2_4_1");
    let expr = c1.add(c2);

    let jit = JitEngine::with_defaults();
    let (compiled, info) = jit.compile(&expr);
    let Compiled::Kernel(k) = compiled else { panic!("expected a kernel") };

    println!("expression : DECIMAL(4,2) + DECIMAL(4,1)");
    println!("result type: {}  (the Listing 1 expansion to precision 6)", k.out_ty);
    println!(
        "kernel     : {} static instructions, modeled NVCC latency {:.0} ms\n",
        k.kernel.static_inst_count(),
        info.modeled_compile_s * 1e3
    );

    let text = disasm::disassemble(&k.kernel);
    // The full kernel is long; print the head plus the carry-chain region.
    for line in text.lines().take(40) {
        println!("{line}");
    }
    println!("    ... ({} more lines)\n", text.lines().count().saturating_sub(40));

    println!("instruction histogram:");
    for (mnemonic, count) in disasm::histogram(&k.kernel) {
        println!("  {mnemonic:<12} {count}");
    }

    // Now the ablation: a constant-heavy expression with and without the
    // §III-D2 optimization.
    let a = Expr::col(0, DecimalType::new(12, 10).unwrap(), "a");
    let e = Expr::lit("1").unwrap().add(a).add(Expr::lit("2").unwrap()).add(Expr::lit("11").unwrap());
    let on = JitEngine::with_defaults();
    let off = JitEngine::new(JitOptions::none());
    let (Compiled::Kernel(k_on), _) = on.compile(&e) else { panic!() };
    let (Compiled::Kernel(k_off), _) = off.compile(&e) else { panic!() };
    println!("\n1 + a + 2 + 11:");
    println!(
        "  unoptimized kernel: {} static instructions",
        k_off.kernel.static_inst_count()
    );
    println!(
        "  optimized kernel  : {} static instructions  (folds to 14 + a, the constant pre-aligned)",
        k_on.kernel.static_inst_count()
    );
}
