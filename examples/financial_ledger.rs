//! Financial ledger: the exactness motivation from the paper's
//! introduction — "preserving the exactness in banking, stock, and many
//! other financing systems".
//!
//! Posts a ledger of 0.1-style fractions that binary floating point
//! cannot represent, reconciles debits against credits exactly, and then
//! compounds interest at high precision.
//!
//! ```sh
//! cargo run --release --example financial_ledger
//! ```

use ultraprecise::prelude::*;

fn main() {
    let mut db = Database::new(Profile::UltraPrecise);
    let money = DecimalType::new(14, 2).unwrap();
    db.create_table(
        "ledger",
        Schema::new(vec![
            ("account", ColumnType::Str),
            ("debit", ColumnType::Decimal(money)),
            ("credit", ColumnType::Decimal(money)),
        ]),
    );

    // 10,000 postings of 0.10 both ways plus a closing imbalance of one
    // cent — the kind of discrepancy auditors care about and f64 loses.
    for i in 0..10_000 {
        let account = if i % 2 == 0 { "operations" } else { "reserves" };
        db.insert(
            "ledger",
            vec![
                Value::Str(account.to_string()),
                Value::Decimal(UpDecimal::parse("0.10", money).unwrap()),
                Value::Decimal(UpDecimal::parse("0.10", money).unwrap()),
            ],
        )
        .unwrap();
    }
    db.insert(
        "ledger",
        vec![
            Value::Str("operations".to_string()),
            Value::Decimal(UpDecimal::parse("0.01", money).unwrap()),
            Value::Decimal(UpDecimal::parse("0.00", money).unwrap()),
        ],
    )
    .unwrap();

    let r = db
        .query(
            "SELECT account, SUM(debit - credit) AS imbalance FROM ledger \
             GROUP BY account ORDER BY account",
        )
        .unwrap();
    println!("Ledger reconciliation (exact):");
    for row in &r.rows {
        println!("  {:<12} {:>8}", row[0].render(), row[1].render());
    }
    println!("  → the one-cent discrepancy is found exactly, not as 0.009999…\n");

    // The same reconciliation on the DOUBLE profile: the imbalance drifts.
    let mut dbl = Database::new(Profile::DoubleF64);
    dbl.create_table(
        "ledger",
        Schema::new(vec![
            ("account", ColumnType::Str),
            ("debit", ColumnType::Decimal(money)),
            ("credit", ColumnType::Decimal(money)),
        ]),
    );
    for i in 0..10_000 {
        let account = if i % 2 == 0 { "operations" } else { "reserves" };
        dbl.insert(
            "ledger",
            vec![
                Value::Str(account.to_string()),
                Value::Decimal(UpDecimal::parse("0.10", money).unwrap()),
                Value::Decimal(UpDecimal::parse("0.10", money).unwrap()),
            ],
        )
        .unwrap();
    }
    dbl.insert(
        "ledger",
        vec![
            Value::Str("operations".to_string()),
            Value::Decimal(UpDecimal::parse("0.01", money).unwrap()),
            Value::Decimal(UpDecimal::parse("0.00", money).unwrap()),
        ],
    )
    .unwrap();
    let rd = dbl
        .query(
            "SELECT account, SUM(debit - credit) AS imbalance FROM ledger \
             GROUP BY account ORDER BY account",
        )
        .unwrap();
    println!("Same query through a DOUBLE engine:");
    for row in &rd.rows {
        println!("  {:<12} {:>24}", row[0].render(), row[1].render());
    }

    // High-precision compounding: daily interest at a 9-digit daily rate
    // over a year, exact to the last digit — needs precision no 64-bit
    // decimal offers.
    println!("\nCompounding 1,000,000.00 at 0.000137174 daily for 8 periods (exact):");
    let mut compound = Database::new(Profile::UltraPrecise);
    let wide = DecimalType::new(120, 80).unwrap();
    compound.create_table("pos", Schema::new(vec![("principal", ColumnType::Decimal(wide))]));
    compound
        .insert(
            "pos",
            vec![Value::Decimal(UpDecimal::parse("1000000.00", wide).unwrap())],
        )
        .unwrap();
    // (1 + r)^8 expanded as a product expression — every factor exact.
    let factor = "1.000137174";
    let expr = vec![factor; 8].join(" * ");
    let q = format!("SELECT principal * {expr} FROM pos");
    let rc = compound.query(&q).unwrap();
    println!("  final position = {}", rc.rows[0][0].render());
    println!("  (all digits significant; a DOUBLE keeps only ~16 of them)");
}
