//! The query service under concurrent load: several client threads share
//! one server (one database, one JIT cache, N simulated GPU streams,
//! and the cross-query pipeline arena), then the metrics report and
//! arena statistics are printed.
//!
//! ```sh
//! cargo run --release --example concurrent_service
//! ```

use std::sync::Arc;
use std::time::Instant;
use ultraprecise::prelude::*;

fn main() {
    // A server with a 4-thread worker pool over 4 simulated CUDA streams,
    // with the cross-query pipeline arena on: compiles start at admission
    // on a shared lane pool, signatures dedup across sessions, and
    // admission dequeues by weighted deficit-round-robin. Kernel launches
    // inside queries additionally parallelize across host cores
    // (SimParallelism::Auto); simulator threads and query workers draw
    // from one shared budget, so the layers compose.
    let server = Arc::new(UpServer::new(ServerConfig {
        arena: true,
        pipeline: PipelineMode::On(4),
        ..ServerConfig::default()
    }));
    println!(
        "simulator threads: {} effective on this host (SimParallelism::Auto, \
         shared with {} query workers)",
        up_gpusim::par::auto_threads(),
        ServerConfig::default().workers,
    );
    println!(
        "exec backend: {} (UP_SIM_EXEC; decoded programs cached per kernel)",
        ServerConfig::default().exec_backend,
    );

    // Load a table of wide decimals (write path: serialized, drains
    // readers).
    let ty = DecimalType::new(30, 6).unwrap();
    server.create_table(
        "ledger",
        Schema::new(vec![
            ("amount", ColumnType::Decimal(ty)),
            ("rate", ColumnType::Decimal(ty)),
        ]),
    );
    let rows: Vec<Vec<Value>> = (0..2000i64)
        .map(|i| {
            let a = UpDecimal::from_scaled_i64(i * 982_451_653 % 900_000_000, ty).unwrap();
            let r = UpDecimal::from_scaled_i64(1_000_000 + i % 75_000, ty).unwrap();
            vec![Value::Decimal(a), Value::Decimal(r)]
        })
        .collect();
    server.insert_many("ledger", rows).unwrap();

    // Eight clients, each its own session, hammering a small query mix.
    // Every distinct expression compiles exactly once server-wide; the
    // rest are cache hits.
    let queries = [
        "SELECT SUM(amount * rate) FROM ledger",
        "SELECT amount, amount + rate FROM ledger WHERE amount > 0 ORDER BY amount DESC LIMIT 3",
        "SELECT AVG(amount * rate + amount) FROM ledger",
    ];
    let clients: Vec<_> = (0..8)
        .map(|c| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let session = server.connect(Profile::UltraPrecise);
                for i in 0..6 {
                    let sql = queries[(c + i) % queries.len()];
                    let t0 = Instant::now();
                    match server.query(session, sql) {
                        Ok(r) => {
                            if c == 0 && i < queries.len() {
                                println!(
                                    "client {c}: {} -> {} row(s), host {:.3} ms, \
                                     modeled {:.3} ms (of which stream queueing {:.3} ms)",
                                    sql,
                                    r.rows.len(),
                                    t0.elapsed().as_secs_f64() * 1e3,
                                    r.modeled.total() * 1e3,
                                    r.modeled.queue_s * 1e3,
                                );
                            }
                        }
                        Err(e) => println!("client {c}: {sql} -> {e}"),
                    }
                }
                server.disconnect(session);
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    // The service dashboard: queue, latency, shared-cache efficiency,
    // and modeled GPU stream occupancy — now including queue-wait
    // percentiles and the arena lines.
    println!();
    print!("{}", server.metrics().report());

    // The arena's own ledger: how much of the compile storm deduped
    // across queries, how busy the shared pools ran, and whether any
    // session hogged the admission queue.
    let stats = server.arena_stats().expect("arena is enabled above");
    println!();
    println!(
        "arena: {} kernel refs from {} queries, {} compiles started, \
         {} cross-query dedups, {} prefetched results taken",
        stats.compile.registered,
        stats.timeline.queries,
        stats.compile.compiles_started,
        stats.compile.cross_query_dedups,
        stats.compile.prefetched_taken,
    );
    println!(
        "shared pools: compile {:.1}% | copy engine {:.1}% | streams {:.1}% \
         (modeled, over a {:.3} s makespan)",
        stats.timeline.compile_utilization * 100.0,
        stats.timeline.copy_utilization * 100.0,
        stats.timeline.stream_utilization * 100.0,
        stats.timeline.makespan_s,
    );
    for (session, wait_s) in &stats.session_waits {
        let total: f64 = stats.session_waits.iter().map(|(_, w)| w).sum();
        let share = if total > 0.0 { wait_s / total * 100.0 } else { 0.0 };
        println!("session {session}: queue wait {:.3} ms ({share:.1}% of total)", wait_s * 1e3);
    }
    println!(
        "max per-session wait share: {:.1}% across {} session(s)",
        stats.max_wait_share * 100.0,
        stats.session_waits.len(),
    );

    // Decoded-program reuse: every distinct kernel is flattened once at
    // JIT-compile time; launches (and JIT cache hits) share the Arc.
    let (builds, hits) = up_gpusim::decode_counters();
    println!("decoded programs: {builds} built, {hits} cache hits");
}
