//! Property-based end-to-end validation: random expressions over random
//! typed columns must produce bit-identical results through the JIT+GPU
//! kernel path and the scalar reference semantics, with and without the
//! §III-D optimizations.

use proptest::prelude::*;
use ultraprecise::up_gpusim::{launch, DeviceConfig, GlobalMem, LaunchConfig};
use ultraprecise::up_jit::cache::{Compiled, JitEngine, JitOptions};
use ultraprecise::up_jit::Expr;
use ultraprecise::up_num::{encode_compact, DecimalType, UpDecimal};

/// A small expression-tree generator over up to 3 columns.
#[derive(Clone, Debug)]
enum Node {
    Col(u8),
    Lit(i32, u8),
    Neg(Box<Node>),
    Add(Box<Node>, Box<Node>),
    Sub(Box<Node>, Box<Node>),
    Mul(Box<Node>, Box<Node>),
}

fn node_strategy() -> impl Strategy<Value = Node> {
    let leaf = prop_oneof![
        (0u8..3).prop_map(Node::Col),
        (-9999i32..=9999, 0u8..=3).prop_map(|(v, s)| Node::Lit(v, s)),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|x| Node::Neg(Box::new(x))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Node::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Node::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Node::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

fn to_expr(n: &Node, tys: &[DecimalType; 3]) -> Expr {
    match n {
        Node::Col(c) => {
            let c = (*c % 3) as usize;
            Expr::col(c, tys[c], format!("c{c}"))
        }
        Node::Lit(v, s) => {
            let s = (*s % 4) as u32;
            let text = format!("{}", *v as f64 / 10f64.powi(s as i32));
            Expr::Const(UpDecimal::parse_literal(&text).expect("literal"))
        }
        Node::Neg(x) => to_expr(x, tys).neg(),
        Node::Add(a, b) => to_expr(a, tys).add(to_expr(b, tys)),
        Node::Sub(a, b) => to_expr(a, tys).sub(to_expr(b, tys)),
        Node::Mul(a, b) => to_expr(a, tys).mul(to_expr(b, tys)),
    }
}

fn run_kernel(expr: &Expr, rows: &[Vec<UpDecimal>], tys: &[DecimalType; 3], opts: JitOptions) -> Vec<UpDecimal> {
    let jit = JitEngine::new(opts);
    let (compiled, _) = jit.compile(expr);
    match compiled {
        Compiled::Passthrough(e) => rows
            .iter()
            .map(|row| e.eval_row(row).expect("passthrough eval"))
            .collect(),
        Compiled::Kernel(k) => {
            let device = DeviceConfig::tiny();
            let mut mem = GlobalMem::new();
            let n = rows.len();
            // The kernel reads buffers 0..n_inputs and writes buffer
            // n_inputs, so add exactly the referenced column prefix.
            for (c, ty) in tys.iter().enumerate().take(k.n_inputs) {
                let mut bytes = Vec::with_capacity(n * ty.lb());
                for row in rows {
                    bytes.extend(encode_compact(&row[c], *ty).expect("encodes"));
                }
                mem.add_buffer(bytes);
            }
            let out_lb = k.out_ty.lb();
            let out = mem.alloc(n.max(1) * out_lb);
            let cfg = LaunchConfig { grid_blocks: 2, block_threads: 64 };
            launch(&k.kernel, cfg, &device, &mut mem, &[n as u32]).expect("launch");
            let bytes = mem.buffer(out);
            (0..n)
                .map(|i| {
                    ultraprecise::up_num::decode_compact(
                        &bytes[i * out_lb..(i + 1) * out_lb],
                        k.out_ty,
                    )
                })
                .collect()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kernels_match_reference_for_random_expressions(
        node in node_strategy(),
        raw in prop::collection::vec((any::<i32>(), any::<i32>(), any::<i32>()), 1..24),
    ) {
        let tys = [
            DecimalType::new_unchecked(12, 2),
            DecimalType::new_unchecked(12, 5),
            DecimalType::new_unchecked(12, 0),
        ];
        let expr = to_expr(&node, &tys);
        // Keep kernels tractable: the inferred type must stay moderate.
        prop_assume!(expr.dtype().precision <= 120);
        let rows: Vec<Vec<UpDecimal>> = raw
            .iter()
            .map(|(a, b, c)| {
                vec![
                    UpDecimal::from_scaled_i64(*a as i64, tys[0]).expect("fits"),
                    UpDecimal::from_scaled_i64(*b as i64, tys[1]).expect("fits"),
                    UpDecimal::from_scaled_i64(*c as i64, tys[2]).expect("fits"),
                ]
            })
            .collect();

        let expect: Vec<UpDecimal> = rows
            .iter()
            .map(|row| expr.eval_row(row).expect("reference eval"))
            .collect();

        // Optimized and unoptimized kernels both match the reference.
        for opts in [JitOptions::default(), JitOptions::none()] {
            let got = run_kernel(&expr, &rows, &tys, opts);
            for (g, w) in got.iter().zip(&expect) {
                prop_assert_eq!(
                    g.cmp_value(w),
                    std::cmp::Ordering::Equal,
                    "kernel {:?} vs reference {:?} (opts {:?})",
                    g, w, opts
                );
            }
        }
    }

    #[test]
    fn optimization_pipeline_preserves_values(
        node in node_strategy(),
        a in any::<i32>(),
        b in any::<i32>(),
        c in any::<i32>(),
    ) {
        let tys = [
            DecimalType::new_unchecked(12, 2),
            DecimalType::new_unchecked(12, 5),
            DecimalType::new_unchecked(12, 0),
        ];
        let expr = to_expr(&node, &tys);
        let row = vec![
            UpDecimal::from_scaled_i64(a as i64, tys[0]).expect("fits"),
            UpDecimal::from_scaled_i64(b as i64, tys[1]).expect("fits"),
            UpDecimal::from_scaled_i64(c as i64, tys[2]).expect("fits"),
        ];
        let jit = JitEngine::with_defaults();
        let optimized = jit.optimize(&expr);
        let v1 = expr.eval_row(&row).expect("raw eval");
        let v2 = optimized.eval_row(&row).expect("optimized eval");
        prop_assert_eq!(v1.cmp_value(&v2), std::cmp::Ordering::Equal, "{:?} vs {:?}", v1, v2);
        // Scheduling never increases runtime alignments.
        prop_assert!(
            ultraprecise::up_jit::alignment_count(&optimized)
                <= ultraprecise::up_jit::alignment_count(&expr)
        );
    }
}
