//! Cross-crate integration tests: SQL in, exact decimals out, across
//! every execution profile, with the GPU kernel path checked against the
//! scalar reference semantics.

use ultraprecise::prelude::*;
use ultraprecise::up_workloads::{datagen, rsa, tpch, trig};

fn dt(p: u32, s: u32) -> DecimalType {
    DecimalType::new(p, s).unwrap()
}

/// Builds a one-decimal-column database for a profile.
fn column_db(profile: Profile, name: &str, ty: DecimalType, vals: &[UpDecimal]) -> Database {
    let mut db = Database::new(profile);
    db.create_table("t", Schema::new(vec![(name, ColumnType::Decimal(ty))]));
    for v in vals {
        db.insert("t", vec![Value::Decimal(v.clone())]).unwrap();
    }
    db
}

#[test]
fn gpu_projection_matches_cpu_reference_on_random_data() {
    // Query 1 shape (c1+c2+c3) across three scales, LEN 2 and LEN 8.
    for p in [17u32, 70] {
        let tys = [dt(p, 2), dt(p, 2), dt(p, 2)];
        let cols: Vec<Vec<UpDecimal>> = (0..3)
            .map(|c| datagen::random_decimal_column(300, tys[c], 3, true, 100 + c as u64))
            .collect();
        let mut db = Database::new(Profile::UltraPrecise);
        db.create_table(
            "r1",
            Schema::new(vec![
                ("c1", ColumnType::Decimal(tys[0])),
                ("c2", ColumnType::Decimal(tys[1])),
                ("c3", ColumnType::Decimal(tys[2])),
            ]),
        );
        for i in 0..300 {
            db.insert(
                "r1",
                vec![
                    Value::Decimal(cols[0][i].clone()),
                    Value::Decimal(cols[1][i].clone()),
                    Value::Decimal(cols[2][i].clone()),
                ],
            )
            .unwrap();
        }
        let r = db.query("SELECT c1 + c2 + c3 FROM r1").unwrap();
        for i in 0..300 {
            let want = cols[0][i].add(&cols[1][i]).add(&cols[2][i]);
            let Value::Decimal(got) = &r.rows[i][0] else { panic!() };
            assert_eq!(got.cmp_value(&want), std::cmp::Ordering::Equal, "p={p} row={i}");
        }
    }
}

#[test]
fn sum_aggregation_is_exact_at_every_paper_precision() {
    // Query 3's precision/scale series: (11,7) … (281,101) — Fig. 14(a).
    for (p, s) in [(11, 7), (29, 11), (65, 31), (137, 51), (281, 101)] {
        let ty = dt(p, s);
        let vals = datagen::random_decimal_column(500, ty, 4, true, p as u64);
        let db = column_db(Profile::UltraPrecise, "c1", ty, &vals);
        let r = db.query("SELECT SUM(c1) FROM t").unwrap();
        // Manual exact sum.
        let out_ty = ty.sum_result(500);
        let mut acc = ultraprecise::up_num::BigInt::zero();
        for v in &vals {
            acc = acc.add(&v.align_up(out_ty.scale));
        }
        let want = UpDecimal::from_parts_unchecked(acc, out_ty);
        let Value::Decimal(got) = &r.rows[0][0] else { panic!() };
        assert_eq!(got.cmp_value(&want), std::cmp::Ordering::Equal, "({p},{s})");
        assert_eq!(got.dtype(), out_ty, "SUM widens per §III-B3");
    }
}

#[test]
fn arbitrary_precision_profiles_agree_with_each_other() {
    let ty = dt(30, 6);
    let vals = datagen::random_decimal_column(120, ty, 3, true, 77);
    let mut reference: Option<Vec<String>> = None;
    for profile in [Profile::UltraPrecise, Profile::PostgresLike, Profile::H2Like, Profile::CockroachLike] {
        let db = column_db(profile, "c1", ty, &vals);
        let r = db.query("SELECT c1 * c1 - c1 FROM t").unwrap();
        let got: Vec<String> = r
            .rows
            .iter()
            .map(|row| match &row[0] {
                // Normalize scale differences across systems via value
                // comparison at a canonical scale.
                Value::Decimal(d) => d.cast(dt(70, 12)).unwrap().to_string(),
                other => panic!("{other:?}"),
            })
            .collect();
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(&got, want, "{}", profile.name()),
        }
    }
}

#[test]
fn limited_systems_fail_exactly_where_the_paper_says() {
    // Fig. 8: HEAVY.AI only LEN 2; MonetDB/RateupDB ≤ LEN 4 (p ≤ 38/36).
    // A 3-term add widens the result by 2 digits (§III-B3), so a column
    // of precision p yields a result of p+2 — size the columns for the
    // result, as the paper's Query 1 setup does.
    let cases = [
        (Profile::HeavyAiLike, 16, true),   // result 18 = the cap
        (Profile::HeavyAiLike, 35, false),  // result 37 → type too wide
        (Profile::MonetLike, 36, true),     // result 38 = the cap
        (Profile::MonetLike, 70, false),
        (Profile::RateupLike, 34, true),    // result 36 = the cap
        (Profile::RateupLike, 70, false),
    ];
    for (profile, p, should_work) in cases {
        let ty = dt(p, 2);
        let vals = datagen::random_decimal_column(50, ty, 4, true, p as u64 + 1000);
        let db = column_db(profile, "c1", ty, &vals);
        let r = db.query("SELECT c1 + c1 + c1 FROM t");
        assert_eq!(
            r.is_ok(),
            should_work,
            "{} at p={p}: {:?}",
            profile.name(),
            r.err()
        );
    }
}

#[test]
fn rsa_query_matches_modular_exponentiation() {
    let w = rsa::build(17, 150, 5);
    let mut db = Database::new(Profile::UltraPrecise);
    db.create_table("r4", Schema::new(vec![("c1", ColumnType::Decimal(w.msg_ty))]));
    for m in &w.messages {
        db.insert("r4", vec![Value::Decimal(m.clone())]).unwrap();
    }
    let r = db.query(&rsa::query4_sql(&w.key.n)).unwrap();
    let truth = rsa::ground_truth(&w);
    for (row, want) in r.rows.iter().zip(&truth) {
        let Value::Decimal(got) = &row[0] else { panic!() };
        assert_eq!(&got.unscaled().abs(), want);
    }
}

#[test]
fn taylor_series_error_collapses_with_terms() {
    let ty = trig::radian_type();
    let radians = datagen::normal_radian_column(60, ty, 0.78, 0.01, 21);
    let truth: Vec<UpDecimal> = radians.iter().map(|x| trig::sin_ground_truth(x, 120)).collect();
    // Build under the r5 name the SQL generator expects.
    let mut db5 = Database::new(Profile::UltraPrecise);
    db5.create_table("r5", Schema::new(vec![("c2", ColumnType::Decimal(ty))]));
    for x in &radians {
        db5.insert("r5", vec![Value::Decimal(x.clone())]).unwrap();
    }
    let mut last_mae = f64::INFINITY;
    for terms in [2u32, 4, 6, 8] {
        let r = db5.query(&trig::taylor_sql("c2", terms)).unwrap();
        let approx: Vec<UpDecimal> = r
            .rows
            .iter()
            .map(|row| match &row[0] {
                Value::Decimal(d) => d.clone(),
                other => panic!("{other:?}"),
            })
            .collect();
        let mae = trig::mean_absolute_error(&approx, &truth);
        assert!(mae < last_mae / 10.0, "terms={terms}: {mae} !< {last_mae}/10");
        last_mae = mae;
    }
    assert!(last_mae < 1e-15);
}

#[test]
fn tpch_q1_is_identical_across_exact_profiles() {
    let cfg = tpch::TpchConfig { lineitem_rows: 800, seed: 12, extended_precision: None };
    let mut results = Vec::new();
    for profile in [Profile::UltraPrecise, Profile::PostgresLike] {
        let mut db = Database::new(profile);
        tpch::load(&mut db, cfg);
        let r = db.query(tpch::q1_sql()).unwrap();
        let rendered: Vec<Vec<f64>> = r
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(|v| match v {
                        Value::Decimal(d) => d.to_f64(),
                        Value::Int64(n) => *n as f64,
                        Value::Str(_) => 0.0,
                        other => panic!("{other:?}"),
                    })
                    .collect()
            })
            .collect();
        results.push(rendered);
    }
    assert_eq!(results[0].len(), results[1].len());
    for (a, b) in results[0].iter().zip(&results[1]) {
        for (x, y) in a.iter().zip(b) {
            let tol = 1e-9 * x.abs().max(1.0);
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }
}

#[test]
fn modeled_times_have_the_papers_structure() {
    // GPU profile has PCIe+compile+kernel; CPU profile has cpu; MonetDB
    // excludes the scan.
    let ty = dt(20, 4);
    let vals = datagen::random_decimal_column(400, ty, 3, true, 31);

    let gpu = column_db(Profile::UltraPrecise, "c1", ty, &vals);
    let rg = gpu.query("SELECT c1 + c1 FROM t").unwrap();
    assert!(rg.modeled.compile_s > 0.0 && rg.modeled.kernel_s > 0.0 && rg.modeled.pcie_s > 0.0);
    assert!(rg.modeled.scan_s > 0.0);

    let pg = column_db(Profile::PostgresLike, "c1", ty, &vals);
    let rp = pg.query("SELECT c1 + c1 FROM t").unwrap();
    assert_eq!(rp.modeled.compile_s, 0.0);
    assert_eq!(rp.modeled.kernel_s, 0.0);
    assert!(rp.modeled.cpu_s > 0.0);
    assert!(rp.modeled.scan_s > 0.0);

    let monet = column_db(Profile::MonetLike, "c1", ty, &vals);
    let rm = monet.query("SELECT c1 + c1 FROM t").unwrap();
    assert_eq!(rm.modeled.scan_s, 0.0, "MonetDB is measured in-memory (§IV)");
}
