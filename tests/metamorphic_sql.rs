//! Metamorphic SQL tests: algebraic identities that must hold across the
//! whole engine stack regardless of data — each one exercises the JIT,
//! the kernels, the aggregation path and the planner together.

use ultraprecise::prelude::*;
use ultraprecise::up_workloads::datagen;

fn dt(p: u32, s: u32) -> DecimalType {
    DecimalType::new(p, s).unwrap()
}

fn db_with(n: usize, seed: u64) -> Database {
    let t1 = dt(16, 3);
    let t2 = dt(16, 6);
    let mut db = Database::new(Profile::UltraPrecise);
    db.create_table(
        "m",
        Schema::new(vec![
            ("a", ColumnType::Decimal(t1)),
            ("b", ColumnType::Decimal(t2)),
            ("tag", ColumnType::Str),
        ]),
    );
    let ca = datagen::random_decimal_column(n, t1, 3, true, seed);
    let cb = datagen::random_decimal_column(n, t2, 3, true, seed + 1);
    for i in 0..n {
        db.insert(
            "m",
            vec![
                Value::Decimal(ca[i].clone()),
                Value::Decimal(cb[i].clone()),
                Value::Str(if i % 3 == 0 { "x" } else { "y" }.to_string()),
            ],
        )
        .unwrap();
    }
    db
}

fn dec_of(v: &Value) -> UpDecimal {
    match v {
        Value::Decimal(d) => d.clone(),
        other => panic!("expected decimal, got {other:?}"),
    }
}

#[test]
fn sum_is_linear() {
    // SUM(a + b) == SUM(a) + SUM(b), exactly.
    let db = db_with(400, 7);
    let lhs = dec_of(&db.query("SELECT SUM(a + b) FROM m").unwrap().rows[0][0]);
    let r = db.query("SELECT SUM(a), SUM(b) FROM m").unwrap();
    let rhs = dec_of(&r.rows[0][0]).add(&dec_of(&r.rows[0][1]));
    assert_eq!(lhs.cmp_value(&rhs), std::cmp::Ordering::Equal);
}

#[test]
fn group_sums_partition_the_total() {
    // Σ over groups == global sum, exactly.
    let db = db_with(300, 11);
    let total = dec_of(&db.query("SELECT SUM(a) FROM m").unwrap().rows[0][0]);
    let grouped = db.query("SELECT tag, SUM(a) FROM m GROUP BY tag").unwrap();
    let mut acc: Option<UpDecimal> = None;
    for row in &grouped.rows {
        let v = dec_of(&row[1]);
        acc = Some(match acc {
            None => v,
            Some(a) => a.add(&v),
        });
    }
    assert_eq!(acc.unwrap().cmp_value(&total), std::cmp::Ordering::Equal);
}

#[test]
fn filter_complement_partitions_count_and_sum() {
    let db = db_with(350, 13);
    let all = db.query("SELECT COUNT(*), SUM(b) FROM m").unwrap();
    let pos = db.query("SELECT COUNT(*), SUM(b) FROM m WHERE a > 0").unwrap();
    let neg = db.query("SELECT COUNT(*), SUM(b) FROM m WHERE NOT a > 0").unwrap();
    let (Value::Int64(n_all), Value::Int64(n_pos), Value::Int64(n_neg)) =
        (&all.rows[0][0], &pos.rows[0][0], &neg.rows[0][0])
    else {
        panic!()
    };
    assert_eq!(*n_all, n_pos + n_neg);
    let s_all = dec_of(&all.rows[0][1]);
    let s_split = dec_of(&pos.rows[0][1]).add(&dec_of(&neg.rows[0][1]));
    assert_eq!(s_all.cmp_value(&s_split), std::cmp::Ordering::Equal);
}

#[test]
fn distributivity_through_the_jit() {
    // (a + b) * 2 == a*2 + b*2 per row — exercises alignment + mul kernels.
    let db = db_with(200, 17);
    let lhs = db.query("SELECT (a + b) * 2 FROM m").unwrap();
    let rhs = db.query("SELECT a * 2 + b * 2 FROM m").unwrap();
    for (l, r) in lhs.rows.iter().zip(&rhs.rows) {
        assert_eq!(
            dec_of(&l[0]).cmp_value(&dec_of(&r[0])),
            std::cmp::Ordering::Equal
        );
    }
}

#[test]
fn case_split_equals_whole() {
    // SUM(CASE p THEN a ELSE 0) + SUM(CASE NOT p THEN a ELSE 0) == SUM(a).
    let db = db_with(250, 19);
    let whole = dec_of(&db.query("SELECT SUM(a) FROM m").unwrap().rows[0][0]);
    let split = db
        .query(
            "SELECT SUM(CASE WHEN tag = 'x' THEN a ELSE 0 END), \
             SUM(CASE WHEN tag <> 'x' THEN a ELSE 0 END) FROM m",
        )
        .unwrap();
    let sum = dec_of(&split.rows[0][0]).add(&dec_of(&split.rows[0][1]));
    assert_eq!(sum.cmp_value(&whole), std::cmp::Ordering::Equal);
}

#[test]
fn avg_times_count_equals_sum_within_truncation() {
    let db = db_with(180, 23);
    let r = db.query("SELECT AVG(a), COUNT(*), SUM(a) FROM m").unwrap();
    let avg = dec_of(&r.rows[0][0]);
    let Value::Int64(n) = r.rows[0][1] else { panic!() };
    let sum = dec_of(&r.rows[0][2]);
    // AVG truncates at scale s+4, so AVG·n is within n ulps of SUM.
    let recon = avg.to_f64() * n as f64;
    let tol = n as f64 * 10f64.powi(-(avg.dtype().scale as i32));
    assert!((recon - sum.to_f64()).abs() <= tol, "{recon} vs {sum}");
}

#[test]
fn order_by_is_a_permutation_and_sorted() {
    let db = db_with(120, 29);
    let plain = db.query("SELECT a FROM m").unwrap();
    let sorted = db.query("SELECT a FROM m ORDER BY a").unwrap();
    assert_eq!(plain.rows.len(), sorted.rows.len());
    let mut vals: Vec<f64> = plain.rows.iter().map(|r| dec_of(&r[0]).to_f64()).collect();
    vals.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let got: Vec<f64> = sorted.rows.iter().map(|r| dec_of(&r[0]).to_f64()).collect();
    assert_eq!(vals, got);
}
